package service

import (
	"fmt"
	"io"
	"time"

	"repro/internal/chase"
	"repro/internal/compile"
	"repro/internal/logic"
	"repro/internal/qos"
	rt "repro/internal/runtime"
	"repro/internal/tgds"
	"repro/internal/wire"
)

// Op identifies the operation a request envelope asks for.
type Op int

const (
	// OpChase materializes chase(D, Σ) (possibly budget-truncated).
	OpChase Op = iota
	// OpDecide answers a ChTrm termination question.
	OpDecide
	// OpExperiment regenerates one of the paper's experiment tables.
	OpExperiment
	// OpRegistry is ontology registration/resolution — operation-agnostic
	// registry work, named truthfully in error envelopes.
	OpRegistry
	// OpResume continues a checkpointed chase over a base-data delta
	// (DeltaRequest) — the incremental re-chase serving mode.
	OpResume
)

// String returns the operation name.
func (o Op) String() string {
	switch o {
	case OpDecide:
		return "decide"
	case OpExperiment:
		return "experiment"
	case OpRegistry:
		return "registry"
	case OpResume:
		return "resume"
	default:
		return "chase"
	}
}

// Priority is the admission lane of a request; the type (and its
// constants) is the scheduler's, re-exported so envelope users need only
// this package.
type Priority = rt.Priority

// Re-exported lane constants.
const (
	PriorityHigh   = rt.PriorityHigh
	PriorityNormal = rt.PriorityNormal
	PriorityLow    = rt.PriorityLow
)

// RequestMeta is the admission metadata of a request: the tenant it is
// billed to (the scheduler dequeues round-robin across tenants within a
// lane, so one tenant's backlog cannot starve another's), its priority
// lane, and its QoS policy — how much chase the request gets
// (internal/qos: Exact, Bounded under the learned round bound, or
// Anytime under a deadline/round quota, plus learn-mode profiling). The
// zero value — anonymous tenant, normal priority, exact serving — is
// what the single-user CLIs submit by default.
type RequestMeta struct {
	Tenant   string
	Priority Priority
	QoS      qos.Policy
}

// jobMeta converts to the scheduler's admission metadata.
func (m RequestMeta) jobMeta() rt.JobMeta {
	return rt.JobMeta{Tenant: m.Tenant, Priority: m.Priority}
}

// ParsePriority parses a lane name ("high", "normal", "low"; "" is
// normal) as rendered by Priority.String — the form request files carry.
func ParsePriority(s string) (Priority, error) {
	switch s {
	case "", "normal":
		return PriorityNormal, nil
	case "high":
		return PriorityHigh, nil
	case "low":
		return PriorityLow, nil
	default:
		return 0, fmt.Errorf("unknown priority %q (want high, normal, or low)", s)
	}
}

// ParseVariant parses a chase-variant name as the CLIs spell it.
func ParseVariant(s string) (chase.Variant, error) {
	switch s {
	case "", "semi", "semi-oblivious":
		return chase.SemiOblivious, nil
	case "oblivious":
		return chase.Oblivious, nil
	case "restricted", "standard":
		return chase.Restricted, nil
	default:
		return 0, fmt.Errorf("unknown engine %q (want semi, oblivious, or restricted)", s)
	}
}

// Payload carries a database (or instance) into a request in one of two
// forms: an in-process *logic.Instance, or the portable wire encoding —
// a snapshot plus any number of per-round deltas, decoded through one
// internal/wire.Decoder so null identity resolves across the stream. The
// in-process form wins when both are set.
type Payload struct {
	Instance *logic.Instance
	Snapshot []byte
	Deltas   [][]byte
}

// load materializes the payload's instance; wire payloads are decoded
// here, at admission, so malformed bytes fail the Submit synchronously
// instead of a worker.
func (p Payload) load() (*logic.Instance, error) {
	if p.Instance != nil {
		return p.Instance, nil
	}
	if p.Snapshot == nil {
		return nil, fmt.Errorf("empty payload: no instance and no snapshot")
	}
	d := wire.NewDecoder()
	if _, err := d.Snapshot(p.Snapshot); err != nil {
		return nil, err
	}
	for i, delta := range p.Deltas {
		if _, err := d.Apply(delta); err != nil {
			return nil, fmt.Errorf("delta %d: %w", i, err)
		}
	}
	return d.Instance(), nil
}

// OntologyRef names a request's Σ either directly (Set) or by its
// canonical compile fingerprint, under which it must have been
// registered (RegisterOntology) — the remote-worker shape, where Σ
// traveled once and jobs travel as fingerprint + database payload.
type OntologyRef struct {
	Set         *tgds.Set
	Fingerprint compile.Fingerprint
}

// ByFingerprint is the OntologyRef of a registered handle.
func ByFingerprint(fp compile.Fingerprint) OntologyRef {
	return OntologyRef{Fingerprint: fp}
}

// ChaseRequest asks for a chase materialization. The zero value is not a
// valid request: Database and Ontology must be populated.
type ChaseRequest struct {
	Meta RequestMeta
	// Name labels the job in results and diagnostics (default "chase").
	Name     string
	Database Payload
	Ontology OntologyRef
	Variant  chase.Variant
	// MaxAtoms / MaxRounds / Wall bound the run (0 = unlimited); a
	// budget-exhausted run is reported through Result.Chase.Terminated,
	// not as an error.
	MaxAtoms  int
	MaxRounds int
	Wall      time.Duration
	// TrackForest / RecordDerivation / NoSemiNaive are chase.Options
	// passthroughs; Result.Derivation surfaces the recorded derivation.
	TrackForest      bool
	RecordDerivation bool
	NoSemiNaive      bool
	// Workers parallelizes the run's trigger collection (<= 1 runs
	// sequentially); Executor, when non-nil, overrides Workers with a
	// caller-owned worker pool.
	Workers  int
	Executor chase.Executor
	// Progress, when non-nil, additionally observes round-boundary
	// statistics in-process (the ticket's Progress stream works either
	// way). In-process only: request files cannot carry it.
	Progress func(chase.Stats)
	// Checkpoint asks the run to capture resumable state at a clean stop
	// (chase.Options.Checkpoint), so the ticket's EncodeCheckpoint can
	// emit a portable artifact a later DeltaRequest continues from. Off
	// by default: capture retains the fired-trigger set past the run.
	Checkpoint bool
}

// DeltaRequest continues a checkpointed chase over a base-data delta —
// the incremental re-chase serving shape: a client holds a checkpoint
// artifact from an earlier run (Ticket.EncodeCheckpoint), new base data
// arrives, and only its consequences are chased. The chase variant is
// pinned by the checkpoint; there is no variant knob here.
type DeltaRequest struct {
	Meta RequestMeta
	// Name labels the job (default "resume").
	Name string
	// Checkpoint is the encoded artifact (internal/checkpoint) the run
	// continues from. Decode failures are KindDecode.
	Checkpoint []byte
	// Ontology optionally names Σ explicitly (inline set or registered
	// fingerprint). When empty, the checkpoint's own fingerprint is
	// resolved through the registry — the steady-state shape: Σ was
	// registered once, checkpoints address it by identity. Either way
	// the set must match the checkpoint exactly (checkpoint.Validate);
	// a mismatch is KindBadRequest wrapping checkpoint.ErrMismatch.
	Ontology OntologyRef
	// Delta carries new base atoms in-process; Deltas carries wire delta
	// blobs encoded against the checkpointed instance, applied in order
	// through the checkpoint's stream before the run starts. Both may be
	// set; blobs apply first, then the atoms ride the resumed round's
	// semi-naive window.
	Delta  []*logic.Atom
	Deltas [][]byte
	// MaxAtoms / MaxRounds / Wall bound the resumed run (0 = unlimited).
	MaxAtoms  int
	MaxRounds int
	Wall      time.Duration
	// TrackForest / RecordDerivation / NoSemiNaive as in ChaseRequest.
	TrackForest      bool
	RecordDerivation bool
	NoSemiNaive      bool
	// Chain asks the resumed run to capture resumable state of its own,
	// so EncodeCheckpoint on its ticket emits a second-generation
	// artifact (checkpoints compose across cuts).
	Chain bool
	// Workers / Executor parallelize the run as in ChaseRequest.
	Workers  int
	Executor chase.Executor
	// Progress observes round boundaries (in-process only).
	Progress func(chase.Stats)
}

// DecideRequest asks a ChTrm termination question. Method selects the
// procedure exactly as the chtrm tool spells it: "syntactic" (default,
// the paper's characterizations), "naive" (budgeted materialization),
// "ucq" (UCQ data-complexity procedure), or "uniform" (every-database
// termination, Σ only).
type DecideRequest struct {
	Meta     RequestMeta
	Name     string
	Database Payload // unused by "uniform"
	Ontology OntologyRef
	Method   string
	// AtomCap bounds the naive probe's materialization.
	AtomCap int
	Wall    time.Duration
	// Workers parallelizes the naive probe's trigger collection.
	Workers int
	// Progress observes the naive probe's rounds (in-process only).
	Progress func(chase.Stats)
}

// ExperimentRequest asks for one of the paper's experiment tables.
type ExperimentRequest struct {
	Meta RequestMeta
	Name string
	// ID is the experiment identifier (e.g. "XP-DEPTH").
	ID    string
	Quick bool
	// Workers sizes the experiment's own scheduler for scheduler-backed
	// sweeps.
	Workers int
	Wall    time.Duration
	// Stream, when non-nil, receives per-trial completion events
	// (in-process only).
	Stream io.Writer
}
