package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/logic"
	"repro/internal/parser"
	"repro/internal/qos"
	"repro/internal/tgds"
)

// RequestFile is the on-disk JSON form of one request envelope — the
// "chase -request req.json" serving shape: a file a client writes and a
// tool (or a future listener) replays through the service layer. Exactly
// the envelope fields that make sense at rest are representable;
// in-process-only fields (Progress callbacks, executors, live payloads)
// are not. Every referenced path is resolved against the request file's
// own directory and confined to it: absolute paths and ".."-escapes are
// rejected across all file fields (program, data, rules, snapshot,
// deltas, checkpoint) by one shared resolver.
type RequestFile struct {
	// Kind selects the operation: "chase", "decide", "experiment", or
	// "resume" (continue a checkpointed chase over a delta).
	Kind string `json:"kind"`
	// Tenant and Priority ("high", "normal", "low") fill RequestMeta, as
	// does QoS — the serving policy in qos.Parse's grammar ("exact",
	// "learn", "bounded", "anytime:250ms", "anytime:3r", ...).
	Tenant   string `json:"tenant,omitempty"`
	Priority string `json:"priority,omitempty"`
	QoS      string `json:"qos,omitempty"`
	// Name labels the job (defaults per operation).
	Name string `json:"name,omitempty"`

	// Program is a combined facts+rules file; alternatively Data and
	// Rules name separate files. Snapshot (plus Deltas) may replace the
	// facts with a binary wire-encoded instance.
	Program  string   `json:"program,omitempty"`
	Data     string   `json:"data,omitempty"`
	Rules    string   `json:"rules,omitempty"`
	Snapshot string   `json:"snapshot,omitempty"`
	Deltas   []string `json:"deltas,omitempty"`
	// Checkpoint names a checkpoint artifact for a "resume" request: the
	// chase continues from it, with the file's facts (and Deltas, read as
	// wire delta blobs against the checkpointed instance) as the
	// base-data delta. Rules are optional — without them the checkpoint's
	// fingerprint resolves through the service registry.
	Checkpoint string `json:"checkpoint,omitempty"`

	// Chase options.
	Engine    string `json:"engine,omitempty"`
	MaxAtoms  int    `json:"maxAtoms,omitempty"`
	MaxRounds int    `json:"maxRounds,omitempty"`

	// Decide options.
	Method  string `json:"method,omitempty"`
	AtomCap int    `json:"atomCap,omitempty"`

	// Experiment options.
	Experiment string `json:"experiment,omitempty"`
	Quick      bool   `json:"quick,omitempty"`

	dir string // directory of the file, for relative path resolution
}

// LoadRequestFile parses a request file. Unknown fields are rejected — a
// misspelled option ("max-atoms" for "maxAtoms") must fail loudly, not
// silently run without the budget the user asked for.
func LoadRequestFile(path string) (*RequestFile, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	f := &RequestFile{}
	dec := json.NewDecoder(bytes.NewReader(src))
	dec.DisallowUnknownFields()
	if err := dec.Decode(f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	f.dir = filepath.Dir(path)
	return f, nil
}

// resolve maps a referenced path into the request file's directory. One
// resolver serves every file field, and it confines references: a
// request may only name files in or below its own directory, so a
// replayed envelope can never be steered at /etc/passwd-style targets —
// absolute paths and ".."-escapes are rejected with the offending field
// named.
func (f *RequestFile) resolve(field, path string) (string, error) {
	if path == "" {
		return "", fmt.Errorf("request names an empty %s path", field)
	}
	if filepath.IsAbs(path) {
		return "", fmt.Errorf("request %s %q: absolute paths escape the request directory", field, path)
	}
	clean := filepath.Clean(path)
	if clean == ".." || strings.HasPrefix(clean, ".."+string(filepath.Separator)) {
		return "", fmt.Errorf("request %s %q: path escapes the request directory", field, path)
	}
	return filepath.Join(f.dir, clean), nil
}

// readRef resolves a referenced path and reads the file it names.
func (f *RequestFile) readRef(field, path string) ([]byte, error) {
	p, err := f.resolve(field, path)
	if err != nil {
		return nil, err
	}
	return os.ReadFile(p)
}

// meta builds the RequestMeta.
func (f *RequestFile) meta() (RequestMeta, error) {
	prio, err := ParsePriority(f.Priority)
	if err != nil {
		return RequestMeta{}, err
	}
	policy, err := qos.Parse(f.QoS)
	if err != nil {
		return RequestMeta{}, err
	}
	return RequestMeta{Tenant: f.Tenant, Priority: prio, QoS: policy}, nil
}

// inputs loads the file's database payload and rule set.
func (f *RequestFile) inputs() (Payload, *tgds.Set, error) {
	var (
		db    *logic.Instance
		rules *tgds.Set
	)
	switch {
	case f.Program != "":
		src, err := f.readRef("program", f.Program)
		if err != nil {
			return Payload{}, nil, err
		}
		prog, err := parser.Parse(string(src))
		if err != nil {
			return Payload{}, nil, err
		}
		db, rules = prog.Database, prog.Rules
	case f.Rules != "":
		src, err := f.readRef("rules", f.Rules)
		if err != nil {
			return Payload{}, nil, err
		}
		if rules, err = parser.ParseRules(string(src)); err != nil {
			return Payload{}, nil, err
		}
		if f.Data != "" {
			dsrc, err := f.readRef("data", f.Data)
			if err != nil {
				return Payload{}, nil, err
			}
			if db, err = parser.ParseDatabase(string(dsrc)); err != nil {
				return Payload{}, nil, err
			}
		}
	default:
		return Payload{}, nil, fmt.Errorf("request names no program or rules")
	}
	if len(f.Deltas) > 0 && f.Snapshot == "" {
		// Refuse rather than silently running against the parsed facts
		// with the deltas never opened.
		return Payload{}, nil, fmt.Errorf("request names deltas but no snapshot to apply them to")
	}
	if f.Snapshot != "" {
		// A wire-encoded instance replaces the parsed facts; the service
		// decodes it at admission.
		snap, err := f.readRef("snapshot", f.Snapshot)
		if err != nil {
			return Payload{}, nil, err
		}
		p := Payload{Snapshot: snap}
		for _, d := range f.Deltas {
			delta, err := f.readRef("delta", d)
			if err != nil {
				return Payload{}, nil, err
			}
			p.Deltas = append(p.Deltas, delta)
		}
		return p, rules, nil
	}
	if db == nil {
		db = logic.NewInstance()
	}
	return Payload{Instance: db}, rules, nil
}

// ChaseRequest builds the typed envelope of a "chase" request file.
func (f *RequestFile) ChaseRequest() (ChaseRequest, error) {
	if f.Kind != "" && f.Kind != "chase" {
		return ChaseRequest{}, fmt.Errorf("request kind %q, want \"chase\"", f.Kind)
	}
	meta, err := f.meta()
	if err != nil {
		return ChaseRequest{}, err
	}
	variant, err := ParseVariant(f.Engine)
	if err != nil {
		return ChaseRequest{}, err
	}
	db, rules, err := f.inputs()
	if err != nil {
		return ChaseRequest{}, err
	}
	return ChaseRequest{
		Meta:      meta,
		Name:      f.Name,
		Database:  db,
		Ontology:  OntologyRef{Set: rules},
		Variant:   variant,
		MaxAtoms:  f.MaxAtoms,
		MaxRounds: f.MaxRounds,
	}, nil
}

// DeltaRequest builds the typed envelope of a "resume" request file:
// Checkpoint names the artifact, the file's facts (Program facts or
// Data) are the in-process delta, Deltas are wire delta blobs, and the
// rules — when present — pin Σ inline (otherwise the checkpoint's
// fingerprint resolves through the registry). Engine is rejected: the
// variant is pinned by the checkpoint. Snapshot is rejected: a resume's
// base instance is the checkpoint, deltas are the only payload.
func (f *RequestFile) DeltaRequest() (DeltaRequest, error) {
	if f.Kind != "resume" {
		return DeltaRequest{}, fmt.Errorf("request kind %q, want \"resume\"", f.Kind)
	}
	meta, err := f.meta()
	if err != nil {
		return DeltaRequest{}, err
	}
	if f.Checkpoint == "" {
		return DeltaRequest{}, fmt.Errorf("resume request names no checkpoint artifact")
	}
	if f.Engine != "" {
		return DeltaRequest{}, fmt.Errorf("resume requests take no engine: the chase variant is pinned by the checkpoint")
	}
	if f.Snapshot != "" {
		return DeltaRequest{}, fmt.Errorf("resume requests take no snapshot: the base instance is the checkpoint, ship new atoms as facts or deltas")
	}
	req := DeltaRequest{
		Meta:      meta,
		Name:      f.Name,
		MaxAtoms:  f.MaxAtoms,
		MaxRounds: f.MaxRounds,
	}
	if req.Checkpoint, err = f.readRef("checkpoint", f.Checkpoint); err != nil {
		return DeltaRequest{}, err
	}
	var facts *logic.Instance
	switch {
	case f.Program != "":
		src, err := f.readRef("program", f.Program)
		if err != nil {
			return DeltaRequest{}, err
		}
		prog, err := parser.Parse(string(src))
		if err != nil {
			return DeltaRequest{}, err
		}
		facts = prog.Database
		req.Ontology = OntologyRef{Set: prog.Rules}
	case f.Rules != "":
		src, err := f.readRef("rules", f.Rules)
		if err != nil {
			return DeltaRequest{}, err
		}
		rules, err := parser.ParseRules(string(src))
		if err != nil {
			return DeltaRequest{}, err
		}
		req.Ontology = OntologyRef{Set: rules}
	}
	if f.Data != "" {
		src, err := f.readRef("data", f.Data)
		if err != nil {
			return DeltaRequest{}, err
		}
		if facts, err = parser.ParseDatabase(string(src)); err != nil {
			return DeltaRequest{}, err
		}
	}
	if facts != nil {
		req.Delta = facts.Atoms()
	}
	for _, d := range f.Deltas {
		blob, err := f.readRef("delta", d)
		if err != nil {
			return DeltaRequest{}, err
		}
		req.Deltas = append(req.Deltas, blob)
	}
	return req, nil
}

// DecideRequest builds the typed envelope of a "decide" request file.
func (f *RequestFile) DecideRequest() (DecideRequest, error) {
	if f.Kind != "" && f.Kind != "decide" {
		return DecideRequest{}, fmt.Errorf("request kind %q, want \"decide\"", f.Kind)
	}
	meta, err := f.meta()
	if err != nil {
		return DecideRequest{}, err
	}
	db, rules, err := f.inputs()
	if err != nil {
		return DecideRequest{}, err
	}
	return DecideRequest{
		Meta:     meta,
		Name:     f.Name,
		Database: db,
		Ontology: OntologyRef{Set: rules},
		Method:   f.Method,
		AtomCap:  f.AtomCap,
	}, nil
}

// ExperimentRequest builds the typed envelope of an "experiment" request
// file.
func (f *RequestFile) ExperimentRequest() (ExperimentRequest, error) {
	if f.Kind != "" && f.Kind != "experiment" {
		return ExperimentRequest{}, fmt.Errorf("request kind %q, want \"experiment\"", f.Kind)
	}
	meta, err := f.meta()
	if err != nil {
		return ExperimentRequest{}, err
	}
	if f.Experiment == "" {
		return ExperimentRequest{}, fmt.Errorf("request names no experiment id")
	}
	return ExperimentRequest{
		Meta:  meta,
		Name:  f.Name,
		ID:    f.Experiment,
		Quick: f.Quick,
	}, nil
}
