package service

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"
)

// Every path a request file can reference is opened at build time, and
// every referenced payload is parsed: a dangling path or a malformed
// file fails the envelope build loudly instead of producing a request
// that silently lacks what it named.
func TestRequestFileBuildErrors(t *testing.T) {
	dir := t.TempDir()
	abs := writeFile(t, dir, "good.dlgp", "p(a).\np(X) -> q(X).\n")
	writeFile(t, dir, "bad.dlgp", "p(a ->")
	writeFile(t, dir, "rules.dlgp", "p(X) -> q(X).\n")
	writeFile(t, dir, "data.dlgp", "p(a).\n")
	const (
		good      = "good.dlgp"
		bad       = "bad.dlgp"
		goodRules = "rules.dlgp"
		goodData  = "data.dlgp"
	)

	chase := map[string]RequestFile{
		"missing program":  {Program: "nope.dlgp"},
		"bad program":      {Program: bad},
		"missing rules":    {Rules: "nope.dlgp"},
		"bad rules":        {Rules: bad},
		"missing data":     {Rules: goodRules, Data: "nope.dlgp"},
		"bad data":         {Rules: goodRules, Data: bad},
		"no inputs":        {},
		"orphaned deltas":  {Program: good, Deltas: []string{"d.bin"}},
		"missing snapshot": {Program: good, Snapshot: "nope.bin"},
		"missing delta":    {Program: good, Snapshot: good, Deltas: []string{"nope.bin"}},
		"bad priority":     {Program: good, Priority: "urgent"},
		"bad engine":       {Program: good, Engine: "turbo"},
		// The shared resolver confines every file field to the request
		// directory: absolute paths and ..-escapes are rejected even when
		// the target exists and parses.
		"absolute program":  {Program: abs},
		"escaping program":  {Program: "../good.dlgp"},
		"absolute rules":    {Rules: abs},
		"escaping data":     {Rules: goodRules, Data: filepath.Join("sub", "..", "..", "data.dlgp")},
		"absolute snapshot": {Program: good, Snapshot: abs},
		"absolute delta":    {Program: good, Snapshot: good, Deltas: []string{abs}},
	}
	for name, f := range chase {
		t.Run("chase/"+name, func(t *testing.T) {
			f.dir = dir
			if _, err := f.ChaseRequest(); err == nil {
				t.Fatal("ChaseRequest built; want error")
			}
		})
	}

	decide := map[string]RequestFile{
		"wrong kind":   {Kind: "chase", Program: good},
		"bad priority": {Program: good, Priority: "urgent"},
		"no inputs":    {},
	}
	for name, f := range decide {
		t.Run("decide/"+name, func(t *testing.T) {
			f.Kind = "decide"
			if name == "wrong kind" {
				f.Kind = "chase"
			}
			f.dir = dir
			if _, err := f.DecideRequest(); err == nil {
				t.Fatal("DecideRequest built; want error")
			}
		})
	}

	experiment := map[string]RequestFile{
		"bad priority": {Kind: "experiment", Experiment: "e1", Priority: "urgent"},
		"no id":        {Kind: "experiment"},
	}
	for name, f := range experiment {
		t.Run("experiment/"+name, func(t *testing.T) {
			f.dir = dir
			if _, err := f.ExperimentRequest(); err == nil {
				t.Fatal("ExperimentRequest built; want error")
			}
		})
	}

	writeFile(t, dir, "run.cp", "not a real artifact, but readable")
	const cp = "run.cp"
	resume := map[string]RequestFile{
		"no checkpoint":       {Kind: "resume"},
		"missing checkpoint":  {Kind: "resume", Checkpoint: "nope.cp"},
		"bad priority":        {Kind: "resume", Checkpoint: cp, Priority: "urgent"},
		"missing program":     {Kind: "resume", Checkpoint: cp, Program: "nope.dlgp"},
		"bad program":         {Kind: "resume", Checkpoint: cp, Program: bad},
		"missing rules":       {Kind: "resume", Checkpoint: cp, Rules: "nope.dlgp"},
		"bad rules":           {Kind: "resume", Checkpoint: cp, Rules: bad},
		"missing data":        {Kind: "resume", Checkpoint: cp, Rules: goodRules, Data: "nope.dlgp"},
		"bad data":            {Kind: "resume", Checkpoint: cp, Rules: goodRules, Data: bad},
		"missing delta blob":  {Kind: "resume", Checkpoint: cp, Deltas: []string{"nope.bin"}},
		"absolute checkpoint": {Kind: "resume", Checkpoint: abs},
		"escaping checkpoint": {Kind: "resume", Checkpoint: "../run.cp"},
	}
	for name, f := range resume {
		t.Run("resume/"+name, func(t *testing.T) {
			f.dir = dir
			if _, err := f.DeltaRequest(); err == nil {
				t.Fatal("DeltaRequest built; want error")
			}
		})
	}

	// A resume file may ship its delta as separate rules + data, with
	// wire blobs alongside; the happy path over Data exercises the
	// parse-and-attach branch the rejection table above cannot.
	f := RequestFile{Kind: "resume", Checkpoint: cp, Rules: goodRules, Data: goodData, dir: dir}
	req, err := f.DeltaRequest()
	if err != nil {
		t.Fatal(err)
	}
	if len(req.Delta) != 1 || req.Ontology.Set == nil {
		t.Fatalf("DeltaRequest = %+v, want one delta atom and inline rules", req)
	}
}

// RegisterOntology refuses a nil set with a typed bad-request error.
func TestRegisterOntologyNil(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	_, err := s.RegisterOntology(nil)
	var se *Error
	if !errors.As(err, &se) || se.Kind != KindBadRequest {
		t.Fatalf("err = %v, want KindBadRequest", err)
	}
	if !strings.Contains(err.Error(), "nil ontology") {
		t.Fatalf("err = %v, want nil-ontology diagnosis", err)
	}
}
