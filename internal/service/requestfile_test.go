package service

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/chase"
	"repro/internal/wire"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRequestFileChase: a chase request file loads, resolves its program
// relative to its own directory, and runs through the service with the
// same result as the equivalent direct submission.
func TestRequestFileChase(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "prog.dlgp", "p(a). p(X) -> ∃Y p(Y).")
	path := writeFile(t, dir, "req.json", `{
		"kind": "chase",
		"tenant": "acme",
		"priority": "high",
		"name": "filed",
		"program": "prog.dlgp",
		"engine": "oblivious",
		"maxAtoms": 10
	}`)
	f, err := LoadRequestFile(path)
	if err != nil {
		t.Fatal(err)
	}
	req, err := f.ChaseRequest()
	if err != nil {
		t.Fatal(err)
	}
	if req.Meta.Tenant != "acme" || req.Meta.Priority != PriorityHigh {
		t.Fatalf("meta = %+v", req.Meta)
	}
	if req.Name != "filed" || req.Variant != chase.Oblivious || req.MaxAtoms != 10 {
		t.Fatalf("envelope = %+v", req)
	}
	s := newService(t, Config{Workers: 1})
	tk, err := s.SubmitChase(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	r := tk.Wait()
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.Chase.Terminated {
		t.Fatal("budgeted infinite chase reported terminated")
	}
	if r.Name != "filed" {
		t.Fatalf("result name %q", r.Name)
	}
}

// TestRequestFileSnapshot: a request file may ship its database as a
// wire-encoded snapshot next to the rules.
func TestRequestFileSnapshot(t *testing.T) {
	dir := t.TempDir()
	prog := parserProg(t, "e(a, b). e(X, Y) -> e(Y, X).")
	snap := wire.EncodeSnapshot(prog.Database)
	if err := os.WriteFile(filepath.Join(dir, "db.cw"), snap, 0o644); err != nil {
		t.Fatal(err)
	}
	writeFile(t, dir, "rules.dlgp", "e(X, Y) -> e(Y, X).")
	path := writeFile(t, dir, "req.json", `{
		"kind": "chase",
		"rules": "rules.dlgp",
		"snapshot": "db.cw"
	}`)
	f, err := LoadRequestFile(path)
	if err != nil {
		t.Fatal(err)
	}
	req, err := f.ChaseRequest()
	if err != nil {
		t.Fatal(err)
	}
	if req.Database.Snapshot == nil {
		t.Fatal("snapshot payload not loaded")
	}
	s := newService(t, Config{Workers: 1})
	tk, err := s.SubmitChase(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	r := tk.Wait()
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	want := chase.Run(prog.Database, prog.Rules, chase.Options{})
	if r.Chase.Instance.CanonicalKey() != want.Instance.CanonicalKey() {
		t.Fatal("snapshot-filed chase diverges from the in-process run")
	}
}

// TestRequestFileKinds: decide and experiment envelopes build, and kind
// mismatches are rejected.
func TestRequestFileKinds(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "prog.dlgp", "p(a). p(X) -> q(X).")
	decide := writeFile(t, dir, "decide.json", `{"kind": "decide", "program": "prog.dlgp", "method": "ucq"}`)
	exp := writeFile(t, dir, "exp.json", `{"kind": "experiment", "experiment": "XP-DEPTH", "quick": true}`)

	df, err := LoadRequestFile(decide)
	if err != nil {
		t.Fatal(err)
	}
	dreq, err := df.DecideRequest()
	if err != nil {
		t.Fatal(err)
	}
	if dreq.Method != "ucq" {
		t.Fatalf("method %q", dreq.Method)
	}
	if _, err := df.ChaseRequest(); err == nil {
		t.Fatal("decide file accepted as a chase request")
	}
	if _, err := df.ExperimentRequest(); err == nil {
		t.Fatal("decide file accepted as an experiment request")
	}

	ef, err := LoadRequestFile(exp)
	if err != nil {
		t.Fatal(err)
	}
	ereq, err := ef.ExperimentRequest()
	if err != nil {
		t.Fatal(err)
	}
	if ereq.ID != "XP-DEPTH" || !ereq.Quick {
		t.Fatalf("envelope %+v", ereq)
	}

	// Malformed files fail loudly.
	if _, err := LoadRequestFile(writeFile(t, dir, "bad.json", "{")); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	// Misspelled fields fail loudly instead of silently dropping options.
	if _, err := LoadRequestFile(writeFile(t, dir, "typo.json",
		`{"kind": "chase", "program": "prog.dlgp", "max-atoms": 500}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	nf, err := LoadRequestFile(writeFile(t, dir, "noinput.json", `{"kind": "chase"}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nf.ChaseRequest(); err == nil {
		t.Fatal("inputless chase request accepted")
	}
	pf, err := LoadRequestFile(writeFile(t, dir, "badprio.json", `{"kind": "chase", "program": "prog.dlgp", "priority": "urgent"}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pf.ChaseRequest(); err == nil {
		t.Fatal("unknown priority accepted")
	}
}
