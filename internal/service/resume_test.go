package service

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/chase"
	"repro/internal/checkpoint"
	"repro/internal/logic"
	"repro/internal/wire"
)

// tcProgram is a transitive-closure workload: null-free, so resumed and
// re-chased instances can be compared by exact canonical key.
const tcProgram = `e(n0, n1). e(n1, n2). e(n2, n3).
	e(X, Y), e(Y, Z) -> e(X, Z).`

// serveArtifact runs one checkpointed chase through the service and
// returns the encoded checkpoint artifact.
func serveArtifact(t *testing.T, s *Service, src string) []byte {
	t.Helper()
	prog := parserProg(t, src)
	tk, err := s.SubmitChase(context.Background(), ChaseRequest{
		Database:   Payload{Instance: prog.Database},
		Ontology:   OntologyRef{Set: prog.Rules},
		Checkpoint: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := tk.EncodeCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// waitChase waits a ticket and returns its chase result, failing the
// test on any error.
func waitChase(t *testing.T, tk *Ticket) *chase.Result {
	t.Helper()
	r := tk.Wait()
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.Chase == nil {
		t.Fatalf("%s result carries no chase run", r.Op)
	}
	return r.Chase
}

// TestServiceResumeRoundTrip: a DeltaRequest through the service — with
// the ontology attached inline, resolved through the registry by the
// checkpoint's own fingerprint, and with the delta shipped as a wire
// blob — is byte-identical to resuming the decoded checkpoint directly,
// at 1 and 4 workers.
func TestServiceResumeRoundTrip(t *testing.T) {
	prog := parserProg(t, tcProgram)
	delta := []*logic.Atom{logic.MakeAtom("e", logic.Constant("n3"), logic.Constant("n4"))}
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			s := newService(t, Config{Workers: workers})
			artifact := serveArtifact(t, s, tcProgram)

			direct, err := checkpoint.Decode(artifact)
			if err != nil {
				t.Fatal(err)
			}
			want, err := direct.Resume(prog.Rules, delta, chase.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !want.Terminated {
				t.Fatal("direct resume did not terminate")
			}

			check := func(t *testing.T, tk *Ticket) {
				r := tk.Wait()
				if r.Err != nil {
					t.Fatal(r.Err)
				}
				if r.Op != OpResume {
					t.Fatalf("result op = %s, want resume", r.Op)
				}
				got := r.Chase
				if !got.Terminated {
					t.Fatal("resumed run did not terminate")
				}
				if got.Instance.CanonicalKey() != want.Instance.CanonicalKey() {
					t.Fatal("service resume diverged from direct resume")
				}
				ga, wa := got.Instance.Atoms(), want.Instance.Atoms()
				for i := range ga {
					if ga[i].Key() != wa[i].Key() {
						t.Fatalf("atom %d: %v != %v (insertion order diverged)", i, ga[i], wa[i])
					}
				}
			}

			t.Run("inline ontology", func(t *testing.T) {
				tk, err := s.SubmitDelta(context.Background(), DeltaRequest{
					Checkpoint: artifact,
					Ontology:   OntologyRef{Set: prog.Rules},
					Delta:      delta,
					Workers:    workers,
				})
				if err != nil {
					t.Fatal(err)
				}
				check(t, tk)
			})

			t.Run("registry fingerprint", func(t *testing.T) {
				// No ontology on the request: the checkpoint's own
				// fingerprint resolves through the registry.
				if _, err := s.RegisterOntology(prog.Rules); err != nil {
					t.Fatal(err)
				}
				tk, err := s.SubmitDelta(context.Background(), DeltaRequest{
					Checkpoint: artifact,
					Delta:      delta,
					Workers:    workers,
				})
				if err != nil {
					t.Fatal(err)
				}
				check(t, tk)
			})

			t.Run("wire delta blob", func(t *testing.T) {
				cpd, err := checkpoint.Decode(artifact)
				if err != nil {
					t.Fatal(err)
				}
				grown := cpd.Instance.Clone()
				for _, a := range delta {
					grown.Add(a)
				}
				blob := wire.EncodeDelta(grown, cpd.Instance.Len())
				tk, err := s.SubmitDelta(context.Background(), DeltaRequest{
					Checkpoint: artifact,
					Ontology:   OntologyRef{Set: prog.Rules},
					Deltas:     [][]byte{blob},
				})
				if err != nil {
					t.Fatal(err)
				}
				check(t, tk)
			})
		})
	}
}

// TestServiceResumeChain: Chain captures resumable state on the resumed
// run itself, so EncodeCheckpoint on its ticket yields a
// second-generation artifact that a further DeltaRequest continues —
// and two chained resumes land on the same instance as one full chase
// over all the base data.
func TestServiceResumeChain(t *testing.T) {
	prog := parserProg(t, tcProgram)
	d1 := []*logic.Atom{logic.MakeAtom("e", logic.Constant("n3"), logic.Constant("n4"))}
	d2 := []*logic.Atom{logic.MakeAtom("e", logic.Constant("n4"), logic.Constant("n5"))}

	s := newService(t, Config{Workers: 2})
	artifact := serveArtifact(t, s, tcProgram)

	tk1, err := s.SubmitDelta(context.Background(), DeltaRequest{
		Checkpoint: artifact,
		Ontology:   OntologyRef{Set: prog.Rules},
		Delta:      d1,
		Chain:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	second, err := tk1.EncodeCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	tk2, err := s.SubmitDelta(context.Background(), DeltaRequest{
		Checkpoint: second,
		Ontology:   OntologyRef{Set: prog.Rules},
		Delta:      d2,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := waitChase(t, tk2)

	full := prog.Database.Clone()
	for _, a := range append(append([]*logic.Atom{}, d1...), d2...) {
		full.Add(a)
	}
	want := chase.Run(full, prog.Rules, chase.Options{})
	if !got.Terminated || !want.Terminated {
		t.Fatalf("terminated: got=%v want=%v", got.Terminated, want.Terminated)
	}
	if got.Instance.CanonicalKey() != want.Instance.CanonicalKey() {
		t.Fatal("chained resumes diverged from the full re-chase")
	}
}

// TestResumeErrorTaxonomy pins the classification of every way a
// DeltaRequest (or checkpoint encode) can fail.
func TestResumeErrorTaxonomy(t *testing.T) {
	prog := parserProg(t, tcProgram)
	s := newService(t, Config{Workers: 1})
	artifact := serveArtifact(t, s, tcProgram)

	wantKind := func(t *testing.T, err error, kind ErrorKind) {
		t.Helper()
		var se *Error
		if !errors.As(err, &se) || se.Kind != kind {
			t.Fatalf("err = %v, want kind %s", err, kind)
		}
	}

	t.Run("empty artifact", func(t *testing.T) {
		_, err := s.SubmitDelta(context.Background(), DeltaRequest{
			Ontology: OntologyRef{Set: prog.Rules},
		})
		wantKind(t, err, KindBadRequest)
	})

	t.Run("corrupt artifact", func(t *testing.T) {
		_, err := s.SubmitDelta(context.Background(), DeltaRequest{
			Checkpoint: artifact[:len(artifact)/2],
			Ontology:   OntologyRef{Set: prog.Rules},
		})
		wantKind(t, err, KindDecode)
		if !errors.Is(err, checkpoint.ErrCorrupt) {
			t.Fatalf("err = %v, not errors.Is checkpoint.ErrCorrupt", err)
		}
	})

	t.Run("unregistered fingerprint", func(t *testing.T) {
		// A fresh service has no registration for the checkpoint's
		// ontology, and the request does not attach one.
		cold := newService(t, Config{Workers: 1})
		_, err := cold.SubmitDelta(context.Background(), DeltaRequest{Checkpoint: artifact})
		wantKind(t, err, KindUnknownOntology)
		if !errors.Is(err, ErrUnknownOntology) {
			t.Fatalf("err = %v, not errors.Is ErrUnknownOntology", err)
		}
	})

	t.Run("ontology mismatch", func(t *testing.T) {
		other := parserProg(t, "p(a). p(X) -> q(X).")
		_, err := s.SubmitDelta(context.Background(), DeltaRequest{
			Checkpoint: artifact,
			Ontology:   OntologyRef{Set: other.Rules},
		})
		wantKind(t, err, KindBadRequest)
		if !errors.Is(err, checkpoint.ErrMismatch) {
			t.Fatalf("err = %v, not errors.Is checkpoint.ErrMismatch", err)
		}
	})

	t.Run("bad delta blob", func(t *testing.T) {
		_, err := s.SubmitDelta(context.Background(), DeltaRequest{
			Checkpoint: artifact,
			Ontology:   OntologyRef{Set: prog.Rules},
			Deltas:     [][]byte{[]byte("junk")},
		})
		wantKind(t, err, KindDecode)
	})

	t.Run("not resumable", func(t *testing.T) {
		// A chase that never asked for checkpoint capture cannot be
		// encoded as one.
		tk, err := s.SubmitChase(context.Background(), ChaseRequest{
			Database: Payload{Instance: prog.Database},
			Ontology: OntologyRef{Set: prog.Rules},
		})
		if err != nil {
			t.Fatal(err)
		}
		_, err = tk.EncodeCheckpoint()
		wantKind(t, err, KindBadRequest)
		if !errors.Is(err, checkpoint.ErrNotResumable) {
			t.Fatalf("err = %v, not errors.Is checkpoint.ErrNotResumable", err)
		}
	})

	t.Run("no chase run", func(t *testing.T) {
		linear := parserProg(t, "p(a). p(X) -> q(X).")
		tk, err := s.SubmitDecide(context.Background(), DecideRequest{
			Database: Payload{Instance: linear.Database},
			Ontology: OntologyRef{Set: linear.Rules},
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err = tk.EncodeCheckpoint(); err == nil {
			t.Fatal("EncodeCheckpoint on a decide ticket succeeded")
		}
		wantKind(t, err, KindBadRequest)
	})
}

// TestRequestFileResume: the on-disk "resume" request shape round-trips
// — artifact plus delta facts in, the resumed materialization out — and
// the rejected field combinations fail loudly.
func TestRequestFileResume(t *testing.T) {
	prog := parserProg(t, tcProgram)
	s := newService(t, Config{Workers: 1})
	artifact := serveArtifact(t, s, tcProgram)

	dir := t.TempDir()
	write := func(name, content string) string {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return name
	}
	if err := os.WriteFile(filepath.Join(dir, "run.cp"), artifact, 0o644); err != nil {
		t.Fatal(err)
	}
	write("delta.dlgp", "e(n3, n4).\ne(X, Y), e(Y, Z) -> e(X, Z).")
	write("delta-facts.dlgp", "e(n3, n4).")
	write("rules.dlgp", "e(X, Y), e(Y, Z) -> e(X, Z).")

	direct, err := checkpoint.Decode(artifact)
	if err != nil {
		t.Fatal(err)
	}
	want, err := direct.Resume(prog.Rules,
		[]*logic.Atom{logic.MakeAtom("e", logic.Constant("n3"), logic.Constant("n4"))}, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}

	submit := func(t *testing.T, spec string) {
		t.Helper()
		path := filepath.Join(dir, "req.json")
		if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
			t.Fatal(err)
		}
		f, err := LoadRequestFile(path)
		if err != nil {
			t.Fatal(err)
		}
		req, err := f.DeltaRequest()
		if err != nil {
			t.Fatal(err)
		}
		tk, err := s.SubmitDelta(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		got := waitChase(t, tk)
		if got.Instance.CanonicalKey() != want.Instance.CanonicalKey() {
			t.Fatal("request-file resume diverged from direct resume")
		}
	}

	t.Run("program", func(t *testing.T) {
		submit(t, `{"kind": "resume", "checkpoint": "run.cp", "program": "delta.dlgp"}`)
	})
	t.Run("rules and data", func(t *testing.T) {
		submit(t, `{"kind": "resume", "checkpoint": "run.cp", "rules": "rules.dlgp", "data": "delta-facts.dlgp"}`)
	})
	t.Run("registry", func(t *testing.T) {
		// Facts only: Σ resolves through the registry by the
		// checkpoint's fingerprint.
		if _, err := s.RegisterOntology(prog.Rules); err != nil {
			t.Fatal(err)
		}
		submit(t, `{"kind": "resume", "checkpoint": "run.cp", "data": "delta-facts.dlgp"}`)
	})

	rejected := map[string]string{
		"wrong kind":    `{"kind": "chase", "checkpoint": "run.cp"}`,
		"no checkpoint": `{"kind": "resume", "program": "delta.dlgp"}`,
		"engine":        `{"kind": "resume", "checkpoint": "run.cp", "program": "delta.dlgp", "engine": "oblivious"}`,
		"snapshot":      `{"kind": "resume", "checkpoint": "run.cp", "snapshot": "db.bin"}`,
	}
	for name, spec := range rejected {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(dir, "bad.json")
			if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
				t.Fatal(err)
			}
			f, err := LoadRequestFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.DeltaRequest(); err == nil {
				t.Fatal("DeltaRequest accepted a rejected field combination")
			}
		})
	}
}
