// Package service is the job-submission surface of the reproduction: the
// transport-ready layer every front end — the three CLIs today, a
// network listener or distributed shard tomorrow — routes through.
// Instead of handing the runtime ad-hoc func() Job closures, callers
// build typed request envelopes (ChaseRequest, DecideRequest,
// ExperimentRequest), submit them, and receive typed Results carrying
// the outcome, its statistics, a derivation handle, and a classified
// error taxonomy (ErrorKind; sentinels stay wrap-checkable via
// errors.Is).
//
// The paper's non-uniform setting is per-(D, Σ) with Σ fixed across many
// databases, and the service API is shaped by exactly that access
// pattern: RegisterOntology(Σ) pins Σ in the compilation cache under its
// canonical fingerprint (internal/compile) and returns the Handle; a
// submitter that shares the fingerprint with a worker then ships only
// fingerprint + database payload per job (SubmitByFingerprint), with the
// database traveling as a portable wire snapshot (+ per-round deltas,
// internal/wire) when the caller is not in-process. An unregistered
// fingerprint fails typed (ErrUnknownOntology): the submitter registers
// Σ once and resumes. Fleets submitted by fingerprint are byte-identical
// to fleets submitted with Σ attached — the equivalence tests pin that
// down at 1 and 4 workers.
//
// Admission is the scheduler's bounded queue with priority lanes and
// per-tenant fair dequeue; RequestMeta{Tenant, Priority} is the
// envelope-level surface of that queue (internal/runtime.JobMeta
// underneath).
package service

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/chase"
	"repro/internal/checkpoint"
	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/logic"
	"repro/internal/qos"
	rt "repro/internal/runtime"
	"repro/internal/telemetry"
	"repro/internal/tgds"
	"repro/internal/wire"
)

// Config configures a Service. The zero value serves: GOMAXPROCS
// workers, the scheduler's default queue bound, blocking backpressure,
// the process-wide compilation cache.
type Config struct {
	// Workers is the number of job workers (<= 0 selects GOMAXPROCS).
	Workers int
	// QueueBound caps the admission queue (<= 0 selects the scheduler
	// default).
	QueueBound int
	// Backpressure selects Submit's behavior at the bound: Block
	// (default) or Reject, which surfaces as KindOverloaded.
	Backpressure rt.Backpressure
	// Cache is the compilation cache ontologies are registered in and
	// artifacts served from; nil selects compile.Global().
	Cache *compile.Cache
	// Telemetry, when non-nil with a Registry, turns the serving plane's
	// observability on: request/scheduler/chase metrics feed the
	// registry, the compile cache and wire codec are bridged into it,
	// and (when Telemetry.Trace is set) every job records trace spans.
	// Nil is the default and the benchmarked fast path — no metric is
	// touched anywhere on the submit or run path.
	Telemetry *telemetry.Telemetry
}

// Service is the job-submission layer: a facade over one streaming
// Scheduler plus the ontology registry. Construct with New; a Service is
// live until Close.
type Service struct {
	sched *rt.Scheduler
	cache *compile.Cache

	tel          *telemetry.Telemetry
	stel         *svcTelemetry
	meterRelease func()
}

// New starts a service.
func New(cfg Config) *Service {
	cache := cfg.Cache
	if cache == nil {
		cache = compile.Global()
	}
	s := &Service{
		sched: rt.NewScheduler(rt.SchedulerConfig{
			Workers:      cfg.Workers,
			QueueBound:   cfg.QueueBound,
			Backpressure: cfg.Backpressure,
			Compiler:     cache,
			Telemetry:    cfg.Telemetry,
		}),
		cache: cache,
		tel:   cfg.Telemetry,
	}
	s.stel, s.meterRelease = newSvcTelemetry(cfg.Telemetry, cache)
	return s
}

// Cache returns the service's compilation cache (for stats surfaces).
func (s *Service) Cache() *compile.Cache { return s.cache }

// ScratchReuses returns how many jobs so far ran on a scheduler worker's
// already-warmed chase scratch (for stats surfaces).
func (s *Service) ScratchReuses() int64 { return s.sched.ScratchReuses() }

// Drain blocks until every admitted job has completed.
func (s *Service) Drain() { s.sched.Drain() }

// Close shuts the service down gracefully: admission stops, admitted
// jobs run to completion, workers exit. A telemetry-enabled service
// also withdraws its wire-meter registration, so codec traffic stops
// billing this service's registry while any other live Service keeps
// its own accounting undisturbed.
func (s *Service) Close() {
	s.sched.Close()
	if s.meterRelease != nil {
		s.meterRelease()
	}
}

// Handle names a registered ontology: the canonical compile fingerprint
// is the cross-process identity jobs are submitted by.
type Handle struct {
	Fingerprint compile.Fingerprint
}

// RegisterOntology pins Σ in the compilation cache under its canonical
// fingerprint and returns the handle. Registering a fingerprint-equal
// (reordered, α-renamed) set again returns the same handle; the first
// registered exact form serves every job under the fingerprint, which is
// what keeps fingerprint-addressed fleets byte-identical.
func (s *Service) RegisterOntology(sigma *tgds.Set) (Handle, error) {
	if sigma == nil {
		return Handle{}, wrapErr(OpRegistry, "register", KindBadRequest, fmt.Errorf("nil ontology"))
	}
	return Handle{Fingerprint: s.cache.Register(sigma)}, nil
}

// Ontology resolves a handle's fingerprint back to the registered set.
func (s *Service) Ontology(fp compile.Fingerprint) (*tgds.Set, error) {
	sigma, ok := s.cache.Registered(fp)
	if !ok {
		return nil, wrapErr(OpRegistry, "resolve", KindUnknownOntology,
			fmt.Errorf("%w: %s", ErrUnknownOntology, fp))
	}
	return sigma, nil
}

// resolve materializes a request's ontology reference.
func (s *Service) resolve(op Op, name string, ref OntologyRef) (*tgds.Set, error) {
	if ref.Set != nil {
		return ref.Set, nil
	}
	if ref.Fingerprint == (compile.Fingerprint{}) {
		return nil, wrapErr(op, name, KindBadRequest, fmt.Errorf("request names no ontology"))
	}
	sigma, ok := s.cache.Registered(ref.Fingerprint)
	if !ok {
		return nil, wrapErr(op, name, KindUnknownOntology,
			fmt.Errorf("%w: %s", ErrUnknownOntology, ref.Fingerprint))
	}
	return sigma, nil
}

// loadPayload materializes a request's database payload with decode
// failures typed.
func loadPayload(op Op, name string, p Payload) (*logic.Instance, error) {
	db, err := p.load()
	if err != nil {
		kind := KindBadRequest
		if p.Instance == nil && p.Snapshot != nil {
			kind = KindDecode
		}
		return nil, wrapErr(op, name, kind, err)
	}
	return db, nil
}

// executor resolves a request's intra-run executor.
func executor(workers int, own chase.Executor) chase.Executor {
	if own != nil {
		return own
	}
	if workers > 1 {
		return rt.NewExecutor(workers)
	}
	return nil
}

func orDefault(name, def string) string {
	if name == "" {
		return def
	}
	return name
}

// SubmitChase admits a chase request and returns its ticket. Validation
// — payload decode included — happens synchronously; the materialization
// runs on the scheduler's workers.
func (s *Service) SubmitChase(ctx context.Context, req ChaseRequest) (*Ticket, error) {
	name := orDefault(req.Name, "chase")
	sigma, err := s.resolve(OpChase, name, req.Ontology)
	if err != nil {
		return nil, err
	}
	db, err := loadPayload(OpChase, name, req.Database)
	if err != nil {
		return nil, err
	}
	dec, fp, err := s.applyQoS(OpChase, name, req.Meta, req.Ontology, sigma,
		req.Variant, req.MaxAtoms, req.MaxRounds, req.Wall)
	if err != nil {
		return nil, err
	}
	opts := chase.Options{
		Variant:          req.Variant,
		MaxAtoms:         req.MaxAtoms,
		TrackForest:      req.TrackForest,
		RecordDerivation: req.RecordDerivation,
		NoSemiNaive:      req.NoSemiNaive,
		Progress:         req.Progress,
		Compile:          s.cache,
		Checkpoint:       req.Checkpoint,
	}
	s.applyChaseDecision(&opts, dec, fp)
	t, err := s.sched.SubmitChaseMeta(ctx, req.Meta.jobMeta(), name, db, sigma, opts,
		rt.Budget{Wall: dec.Wall}, executor(req.Workers, req.Executor))
	if err != nil {
		return nil, wrapErr(OpChase, name, KindInternal, err)
	}
	if s.stel != nil {
		s.stel.observeRequest(OpChase, req.Meta, req.Ontology)
	}
	return s.ticket(OpChase, t, sigma, dec, req.MaxAtoms), nil
}

// SubmitDelta admits an incremental re-chase request: the checkpoint
// artifact is decoded, its ontology resolved (explicitly, or — the
// steady-state shape — through the registry by the checkpoint's own
// fingerprint) and validated against it, wire delta blobs are applied
// through the checkpoint's stream, and the resumed run is scheduled
// with the same admission metadata, budgets, and telemetry as a chase
// (its terminal trace span is "resume"). All validation is synchronous:
// a corrupt artifact or blob (KindDecode), an unregistered fingerprint
// (KindUnknownOntology), and a mismatched ontology (KindBadRequest
// wrapping checkpoint.ErrMismatch) fail the Submit, not the worker.
func (s *Service) SubmitDelta(ctx context.Context, req DeltaRequest) (*Ticket, error) {
	name := orDefault(req.Name, "resume")
	if len(req.Checkpoint) == 0 {
		return nil, wrapErr(OpResume, name, KindBadRequest, fmt.Errorf("request carries no checkpoint artifact"))
	}
	cp, err := checkpoint.Decode(req.Checkpoint)
	if err != nil {
		return nil, wrapErr(OpResume, name, KindDecode, err)
	}
	var sigma *tgds.Set
	if req.Ontology.Set != nil || req.Ontology.Fingerprint != (compile.Fingerprint{}) {
		if sigma, err = s.resolve(OpResume, name, req.Ontology); err != nil {
			return nil, err
		}
	} else {
		var ok bool
		if sigma, ok = s.cache.Registered(cp.Fingerprint); !ok {
			return nil, wrapErr(OpResume, name, KindUnknownOntology,
				fmt.Errorf("%w: the checkpoint's ontology %s is not registered (register Σ, or attach it to the request)",
					ErrUnknownOntology, cp.Fingerprint))
		}
	}
	if err := cp.Validate(sigma); err != nil {
		return nil, wrapErr(OpResume, name, KindBadRequest, err)
	}
	for i, blob := range req.Deltas {
		if _, err := cp.ApplyDelta(blob); err != nil {
			return nil, wrapErr(OpResume, name, KindDecode, fmt.Errorf("delta blob %d: %w", i, err))
		}
	}
	if req.Meta.QoS.Learn {
		// A learned bound describes a from-scratch reference run; a
		// continuation's round count would understate it.
		return nil, wrapErr(OpResume, name, KindBadRequest,
			fmt.Errorf("bound learning needs a fresh reference run, not a resumed one"))
	}
	// The variant and fingerprint are pinned by the checkpoint, so
	// Bounded resolves the same learned bound the original run would
	// (its round budget then bounds the continuation's own rounds).
	dec, _, err := s.applyQoS(OpResume, name, req.Meta, OntologyRef{Fingerprint: cp.Fingerprint}, sigma,
		cp.Variant, req.MaxAtoms, req.MaxRounds, req.Wall)
	if err != nil {
		return nil, err
	}
	opts := chase.Options{
		MaxAtoms:         req.MaxAtoms,
		TrackForest:      req.TrackForest,
		RecordDerivation: req.RecordDerivation,
		NoSemiNaive:      req.NoSemiNaive,
		Progress:         req.Progress,
		Compile:          s.cache,
		Checkpoint:       req.Chain,
	}
	s.applyChaseDecision(&opts, dec, cp.Fingerprint)
	t, err := s.sched.SubmitResumeMeta(ctx, req.Meta.jobMeta(), name, cp, sigma, req.Delta, opts,
		rt.Budget{Wall: dec.Wall}, executor(req.Workers, req.Executor))
	if err != nil {
		return nil, wrapErr(OpResume, name, KindInternal, err)
	}
	if s.stel != nil {
		s.stel.observeRequest(OpResume, req.Meta, req.Ontology)
	}
	return s.ticket(OpResume, t, sigma, dec, req.MaxAtoms), nil
}

// SubmitByFingerprint is SubmitChase for a remote-shaped submission: the
// ontology only by registered fingerprint, the database only as payload
// (wire bytes or in-process instance). It is exactly equivalent to
// SubmitChase with the resolved set attached.
func (s *Service) SubmitByFingerprint(ctx context.Context, fp compile.Fingerprint, payload Payload, req ChaseRequest) (*Ticket, error) {
	req.Ontology = ByFingerprint(fp)
	req.Database = payload
	return s.SubmitChase(ctx, req)
}

// SubmitDecide admits a termination-decision request.
func (s *Service) SubmitDecide(ctx context.Context, req DecideRequest) (*Ticket, error) {
	name := orDefault(req.Name, "decide")
	sigma, err := s.resolve(OpDecide, name, req.Ontology)
	if err != nil {
		return nil, err
	}
	var db *logic.Instance
	if req.Method != "uniform" {
		if db, err = loadPayload(OpDecide, name, req.Database); err != nil {
			return nil, err
		}
	}
	dec, req, err := s.decideQoS(name, req, sigma)
	if err != nil {
		return nil, err
	}
	run, err := s.decideRun(req, db, sigma)
	if err != nil {
		return nil, wrapErr(OpDecide, name, KindBadRequest, err)
	}
	j := rt.Job{Name: name, Meta: req.Meta.jobMeta(), Wall: req.Wall, Run: run}
	t, err := s.sched.SubmitIn(ctx, j)
	if err != nil {
		return nil, wrapErr(OpDecide, name, KindInternal, err)
	}
	if s.stel != nil {
		s.stel.observeRequest(OpDecide, req.Meta, req.Ontology)
	}
	return s.ticket(OpDecide, t, nil, dec, 0), nil
}

// decideRun builds the decision procedure for the request's method; the
// verdicts are identical to calling internal/core directly (the cache is
// a pure performance knob).
func (s *Service) decideRun(req DecideRequest, db *logic.Instance, sigma *tgds.Set) (func(context.Context) (any, error), error) {
	switch req.Method {
	case "uniform":
		return func(context.Context) (any, error) {
			return core.DecideUniformWith(sigma, s.cache)
		}, nil
	case "", "syntactic":
		return func(context.Context) (any, error) {
			return core.DecideWith(db, sigma, s.cache)
		}, nil
	case "naive":
		exec := executor(req.Workers, nil)
		return func(ctx context.Context) (any, error) {
			return core.DecideNaiveOpt(db, sigma, core.NaiveOptions{
				AtomCap:  req.AtomCap,
				Executor: exec,
				Compiler: s.cache,
				Progress: req.Progress,
			})
		}, nil
	case "ucq":
		return func(context.Context) (any, error) {
			return s.decideUCQ(db, sigma)
		}, nil
	default:
		return nil, fmt.Errorf("unknown method %q (want syntactic, naive, ucq, or uniform)", req.Method)
	}
}

// decideUCQ evaluates the termination UCQ Q_Σ (Theorems 6.6 / 7.7) with
// the UCQ built once per ontology through the cache.
func (s *Service) decideUCQ(db *logic.Instance, sigma *tgds.Set) (*core.Verdict, error) {
	var (
		q     core.UCQ
		err   error
		class = sigma.Classify()
	)
	switch class {
	case tgds.ClassSL:
		q, err = s.cache.UCQSL(sigma)
	case tgds.ClassL:
		q, err = s.cache.UCQL(sigma)
	default:
		return nil, fmt.Errorf("the UCQ method applies to simple linear and linear sets only")
	}
	if err != nil {
		return nil, err
	}
	v := &core.Verdict{Class: class, Method: "UCQ evaluation (exact pattern semantics)"}
	if q.EvalExact(db) {
		v.Outcome = core.Infinite
		v.Certificate = "D satisfies " + q.String()
	} else {
		v.Outcome = core.Finite
	}
	return v, nil
}

// SubmitExperiment admits an experiment-table request. The experiment id
// is validated synchronously; the sweep runs on a worker.
func (s *Service) SubmitExperiment(ctx context.Context, req ExperimentRequest) (*Ticket, error) {
	name := orDefault(req.Name, req.ID)
	e, err := experiments.Get(req.ID)
	if err != nil {
		return nil, wrapErr(OpExperiment, name, KindBadRequest, err)
	}
	dec, err := s.experimentQoS(name, &req)
	if err != nil {
		return nil, err
	}
	cfg := experiments.Config{
		Quick:    req.Quick,
		Workers:  req.Workers,
		Compiler: s.cache,
		Stream:   req.Stream,
	}
	j := rt.Job{Name: name, Meta: req.Meta.jobMeta(), Wall: req.Wall,
		Run: func(context.Context) (any, error) { return e.Run(cfg) }}
	t, err := s.sched.SubmitIn(ctx, j)
	if err != nil {
		return nil, wrapErr(OpExperiment, name, KindInternal, err)
	}
	if s.stel != nil {
		s.stel.observeRequest(OpExperiment, req.Meta, OntologyRef{})
	}
	return s.ticket(OpExperiment, t, nil, dec, 0), nil
}

// Ticket is one admitted request's handle: Wait (or Done) for the typed
// Result, Progress for a chase request's round-level statistics stream,
// Cancel to preempt.
type Ticket struct {
	op Op
	rt *rt.Ticket
	// sigma is the resolved ontology of a chase/resume request, retained
	// so EncodeCheckpoint can bind the artifact to it.
	sigma *tgds.Set
	// dec is the request's resolved QoS decision and maxAtoms its
	// explicit atom budget: together they name the budget source of a
	// truncated result (Result.BudgetSource) deterministically.
	dec      qos.Decision
	maxAtoms int
	// stel bills the per-mode QoS outcome metrics exactly once per
	// ticket (Wait may be called repeatedly); nil when telemetry is off.
	stel    *svcTelemetry
	qosOnce sync.Once
}

// ticket assembles a request's handle.
func (s *Service) ticket(op Op, t *rt.Ticket, sigma *tgds.Set, dec qos.Decision, maxAtoms int) *Ticket {
	return &Ticket{op: op, rt: t, sigma: sigma, dec: dec, maxAtoms: maxAtoms, stel: s.stel}
}

// Name returns the job's name.
func (t *Ticket) Name() string { return t.rt.Name() }

// Op returns the request's operation.
func (t *Ticket) Op() Op { return t.op }

// Index returns the scheduler's submission sequence number.
func (t *Ticket) Index() int { return t.rt.Index() }

// Cancel preempts the job (idempotent; the Result still arrives, marked
// Canceled when preemption won).
func (t *Ticket) Cancel() { t.rt.Cancel() }

// Progress returns the round-level statistics stream of a chase request
// (latest-wins, closed when the job finishes). It is never nil: for
// operations without a stream it returns an already-closed channel, so
// a consumer ranging over it falls through immediately instead of
// blocking forever, and a select must honor the ok flag.
func (t *Ticket) Progress() <-chan chase.Stats { return t.rt.Progress() }

// Wait blocks until the job finishes and returns its typed result;
// repeated calls return the same result. A budget-truncated chase
// result carries the budget's source (flag, deadline, or learned-bound)
// resolved from the ticket's QoS decision, and the per-mode QoS
// telemetry — outcome counters and the deadline-slack histogram — is
// billed here, once per ticket.
func (t *Ticket) Wait() Result {
	r := resultOf(t.op, t.rt.Wait())
	if r.Chase != nil && !r.Chase.Terminated {
		r.BudgetSource = t.dec.TruncationSource(t.maxAtoms, r.Chase.Stats)
	}
	if t.stel != nil {
		t.qosOnce.Do(func() { t.stel.observeQoS(t.dec, r) })
	}
	return r
}

// EncodeChase waits for a chase result and encodes its materialized
// instance as a portable wire snapshot — the reply-path encode of a
// remote-shaped serving flow. The encode is metered (wire_encode_bytes
// on a telemetry-enabled service) and, when the job is traced,
// recorded as the job's terminal "encode" span. The bytes are
// byte-identical to calling wire.EncodeSnapshot on the result
// directly.
func (t *Ticket) EncodeChase() ([]byte, error) {
	r := t.Wait()
	if r.Err != nil {
		return nil, r.Err
	}
	if r.Chase == nil {
		return nil, wrapErr(t.op, r.Name, KindBadRequest,
			fmt.Errorf("encode: %s result carries no instance", t.op))
	}
	tr := t.rt.Trace()
	start := tr.Now()
	data := wire.EncodeSnapshot(r.Chase.Instance)
	tr.Span("encode", tr.Now().Sub(start), "bytes", strconv.Itoa(len(data)))
	return data, nil
}

// EncodeCheckpoint waits for a chase or resume result and encodes it as
// a portable checkpoint artifact — the hand-off of the incremental
// re-chase flow: serve the artifact now, continue it later through a
// DeltaRequest. The run must have captured resumable state (the
// request's Checkpoint/Chain flag, and a clean stop); otherwise the
// error wraps checkpoint.ErrNotResumable as KindBadRequest. When the
// job is traced, the encode is recorded as a "checkpoint" span.
func (t *Ticket) EncodeCheckpoint() ([]byte, error) {
	r := t.Wait()
	if r.Err != nil {
		return nil, r.Err
	}
	if r.Chase == nil || t.sigma == nil {
		return nil, wrapErr(t.op, r.Name, KindBadRequest,
			fmt.Errorf("encode-checkpoint: %s result carries no chase run", t.op))
	}
	cp, err := checkpoint.Capture(t.sigma, r.Chase)
	if err != nil {
		return nil, wrapErr(t.op, r.Name, KindBadRequest, err)
	}
	tr := t.rt.Trace()
	start := tr.Now()
	data, err := cp.Encode()
	if err != nil {
		return nil, wrapErr(t.op, r.Name, KindInternal, err)
	}
	tr.Span("checkpoint", tr.Now().Sub(start), "bytes", strconv.Itoa(len(data)))
	return data, nil
}

// Result is the typed response envelope: exactly one of Chase, Verdict,
// Table is populated on success (by Op), and Err carries the classified
// *Error on failure. Budget-truncated chase runs are successes with
// Chase.Terminated == false.
type Result struct {
	Op    Op
	Name  string
	Index int
	// Wall is the job's own wall-clock; TimedOut reports the job's wall
	// budget expiring, Canceled a preemption.
	Wall     time.Duration
	TimedOut bool
	Canceled bool

	Chase   *chase.Result
	Verdict *core.Verdict
	Table   *experiments.Table
	Err     error

	// BudgetSource names the budget that stopped a truncated chase run —
	// the vocabulary of the CLI's "% truncated: <source> budget
	// exhausted" marker. Meaningful only when Chase is non-nil and not
	// terminated; the zero value is qos.SourceFlag, the pre-QoS behavior.
	BudgetSource qos.Source
}

// Stats returns the chase statistics of a chase result (zero otherwise).
func (r Result) Stats() chase.Stats {
	if r.Chase == nil {
		return chase.Stats{}
	}
	return r.Chase.Stats
}

// Derivation returns the recorded derivation handle of a chase run that
// asked for one (RecordDerivation), nil otherwise.
func (r Result) Derivation() *chase.Derivation {
	if r.Chase == nil {
		return nil
	}
	return r.Chase.Derivation
}

// resultOf converts a scheduler JobResult into the typed envelope.
func resultOf(op Op, jr rt.JobResult) Result {
	r := Result{
		Op:       op,
		Name:     jr.Name,
		Index:    jr.Index,
		Wall:     jr.Wall,
		TimedOut: jr.TimedOut,
		Canceled: jr.Canceled,
	}
	if jr.Err != nil {
		kind := KindInternal
		if jr.Canceled {
			kind = KindCanceled
		}
		r.Err = wrapErr(op, jr.Name, kind, jr.Err)
		return r
	}
	switch v := jr.Value.(type) {
	case *chase.Result:
		r.Chase = v
	case *core.Verdict:
		r.Verdict = v
	case *experiments.Table:
		r.Table = v
	}
	return r
}
