package service

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/chase"
	"repro/internal/compile"
	"repro/internal/experiments"
	"repro/internal/logic"
	"repro/internal/parser"
	rt "repro/internal/runtime"
	"repro/internal/tgds"
	"repro/internal/wire"
)

// scenarios loads every example program under examples/dlgp.
func scenarios(t *testing.T) map[string]*parser.Program {
	t.Helper()
	dir := filepath.Join("..", "..", "examples", "dlgp")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]*parser.Program)
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".dlgp") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		prog, err := parser.Parse(string(src))
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		out[strings.TrimSuffix(e.Name(), ".dlgp")] = prog
	}
	if len(out) == 0 {
		t.Fatal("no example scenarios found")
	}
	return out
}

func newService(t *testing.T, cfg Config) *Service {
	t.Helper()
	if cfg.Cache == nil {
		cfg.Cache = compile.NewCache(0)
	}
	s := New(cfg)
	t.Cleanup(s.Close)
	return s
}

// TestFingerprintFleetEquivalence is the acceptance property: a fleet
// submitted by registered fingerprint with wire-encoded databases is
// byte-identical — CanonicalKey, termination, statistics (modulo the
// compile-fetch counters, which describe cache behavior, not the chase)
// — to the same fleet submitted directly with Σ and the in-process
// instance attached, at 1 and 4 workers (both scheduler- and
// intra-run-parallelism).
func TestFingerprintFleetEquivalence(t *testing.T) {
	progs := scenarios(t)
	variants := []chase.Variant{chase.SemiOblivious, chase.Oblivious, chase.Restricted}
	for _, workers := range []int{1, 4} {
		direct := newService(t, Config{Workers: workers})
		byFP := newService(t, Config{Workers: workers})

		var directTickets, fpTickets []*Ticket
		for name, prog := range progs {
			h, err := byFP.RegisterOntology(prog.Rules)
			if err != nil {
				t.Fatal(err)
			}
			snapshot := wire.EncodeSnapshot(prog.Database)
			for _, v := range variants {
				req := ChaseRequest{
					Name:     name + "/" + v.String(),
					Variant:  v,
					MaxAtoms: 300,
					Workers:  workers,
				}
				dreq := req
				dreq.Database = Payload{Instance: prog.Database}
				dreq.Ontology = OntologyRef{Set: prog.Rules}
				dt, err := direct.SubmitChase(context.Background(), dreq)
				if err != nil {
					t.Fatal(err)
				}
				directTickets = append(directTickets, dt)

				ft, err := byFP.SubmitByFingerprint(context.Background(), h.Fingerprint, Payload{Snapshot: snapshot}, req)
				if err != nil {
					t.Fatal(err)
				}
				fpTickets = append(fpTickets, ft)
			}
		}
		for i := range directTickets {
			dr, fr := directTickets[i].Wait(), fpTickets[i].Wait()
			if dr.Err != nil || fr.Err != nil {
				t.Fatalf("workers=%d %s: errs %v / %v", workers, dr.Name, dr.Err, fr.Err)
			}
			if dr.Chase.Terminated != fr.Chase.Terminated {
				t.Fatalf("workers=%d %s: Terminated %v vs %v", workers, dr.Name, dr.Chase.Terminated, fr.Chase.Terminated)
			}
			ds, fs := dr.Stats(), fr.Stats()
			ds.CompileHits, ds.CompileMisses = 0, 0
			fs.CompileHits, fs.CompileMisses = 0, 0
			if ds != fs {
				t.Fatalf("workers=%d %s: stats %+v vs %+v", workers, dr.Name, ds, fs)
			}
			if dk, fk := dr.Chase.Instance.CanonicalKey(), fr.Chase.Instance.CanonicalKey(); dk != fk {
				t.Fatalf("workers=%d %s: fingerprint-submitted fleet diverges from direct fleet", workers, dr.Name)
			}
		}
	}
}

// TestUnknownFingerprint: submitting by an unregistered fingerprint
// fails synchronously, typed, and wrap-checkable.
func TestUnknownFingerprint(t *testing.T) {
	s := newService(t, Config{Workers: 1})
	var bogus compile.Fingerprint
	bogus[0] = 0xcb
	_, err := s.SubmitByFingerprint(context.Background(), bogus, Payload{Instance: parserDB(t, `p(a).`)}, ChaseRequest{})
	if !errors.Is(err, ErrUnknownOntology) {
		t.Fatalf("err = %v, not errors.Is ErrUnknownOntology", err)
	}
	var se *Error
	if !errors.As(err, &se) || se.Kind != KindUnknownOntology {
		t.Fatalf("err = %v, want *Error{KindUnknownOntology}", err)
	}
	if _, err := s.Ontology(bogus); !errors.Is(err, ErrUnknownOntology) {
		t.Fatalf("Ontology(bogus) err = %v", err)
	}

	// Register, then resolve both the exact set and an α-renamed twin.
	sigma := parserRules(t, "p(X) -> ∃Y r(X, Y).")
	h, err := s.RegisterOntology(sigma)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Ontology(h.Fingerprint)
	if err != nil || got != sigma {
		t.Fatalf("Ontology(handle) = %v, %v", got, err)
	}
	twin, err := s.RegisterOntology(parserRules(t, "p(U) -> ∃W r(U, W)."))
	if err != nil {
		t.Fatal(err)
	}
	if twin != h {
		t.Fatal("α-renamed ontology received a different handle")
	}
}

// TestErrorTaxonomy walks the submit-side taxonomy: overload, closed,
// decode, bad request — every kind classified and every sentinel
// reachable through errors.Is.
func TestErrorTaxonomy(t *testing.T) {
	prog := parserProg(t, "p(a). p(X) -> ∃Y p(Y).")

	t.Run("overloaded", func(t *testing.T) {
		s := newService(t, Config{Workers: 1, QueueBound: 1, Backpressure: rt.Reject})
		gate := make(chan struct{})
		claimed := make(chan struct{})
		var once, releaseOnce sync.Once
		release := func() { releaseOnce.Do(func() { close(gate) }) }
		defer release()
		first, err := s.SubmitChase(context.Background(), ChaseRequest{
			Database: Payload{Instance: prog.Database},
			Ontology: OntologyRef{Set: prog.Rules},
			MaxAtoms: 50,
			Progress: func(chase.Stats) {
				once.Do(func() { close(claimed) })
				<-gate
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		// Wait until the worker has claimed the job (its first round
		// parks on the gate), then fill the queue bound.
		<-claimed
		if _, err := s.SubmitChase(context.Background(), ChaseRequest{
			Database: Payload{Instance: prog.Database},
			Ontology: OntologyRef{Set: prog.Rules},
			MaxAtoms: 10,
		}); err != nil {
			t.Fatalf("queued submit: %v", err)
		}
		_, err = s.SubmitChase(context.Background(), ChaseRequest{
			Database: Payload{Instance: prog.Database},
			Ontology: OntologyRef{Set: prog.Rules},
			MaxAtoms: 10,
		})
		if !errors.Is(err, rt.ErrQueueFull) {
			t.Fatalf("err = %v, not errors.Is runtime.ErrQueueFull", err)
		}
		var se *Error
		if !errors.As(err, &se) || se.Kind != KindOverloaded {
			t.Fatalf("err = %v, want KindOverloaded", err)
		}
		release()
		if r := first.Wait(); r.Err != nil {
			t.Fatalf("gated job failed: %v", r.Err)
		}
	})

	t.Run("unavailable", func(t *testing.T) {
		s := New(Config{Workers: 1, Cache: compile.NewCache(0)})
		s.Close()
		_, err := s.SubmitChase(context.Background(), ChaseRequest{
			Database: Payload{Instance: prog.Database},
			Ontology: OntologyRef{Set: prog.Rules},
		})
		if !errors.Is(err, rt.ErrSchedulerClosed) {
			t.Fatalf("err = %v, not errors.Is runtime.ErrSchedulerClosed", err)
		}
		var se *Error
		if !errors.As(err, &se) || se.Kind != KindUnavailable {
			t.Fatalf("err = %v, want KindUnavailable", err)
		}
	})

	t.Run("decode", func(t *testing.T) {
		s := newService(t, Config{Workers: 1})
		_, err := s.SubmitChase(context.Background(), ChaseRequest{
			Database: Payload{Snapshot: []byte("CWgarbage")},
			Ontology: OntologyRef{Set: prog.Rules},
		})
		if !errors.Is(err, wire.ErrCorrupt) {
			t.Fatalf("err = %v, not errors.Is wire.ErrCorrupt", err)
		}
		var se *Error
		if !errors.As(err, &se) || se.Kind != KindDecode {
			t.Fatalf("err = %v, want KindDecode", err)
		}
	})

	t.Run("bad request", func(t *testing.T) {
		s := newService(t, Config{Workers: 1})
		cases := map[string]func() error{
			"no ontology": func() error {
				_, err := s.SubmitChase(context.Background(), ChaseRequest{Database: Payload{Instance: prog.Database}})
				return err
			},
			"no database": func() error {
				_, err := s.SubmitChase(context.Background(), ChaseRequest{Ontology: OntologyRef{Set: prog.Rules}})
				return err
			},
			"unknown method": func() error {
				_, err := s.SubmitDecide(context.Background(), DecideRequest{
					Database: Payload{Instance: prog.Database},
					Ontology: OntologyRef{Set: prog.Rules},
					Method:   "oracle",
				})
				return err
			},
			"unknown experiment": func() error {
				_, err := s.SubmitExperiment(context.Background(), ExperimentRequest{ID: "XP-NOPE"})
				return err
			},
		}
		for name, f := range cases {
			var se *Error
			if err := f(); !errors.As(err, &se) || se.Kind != KindBadRequest {
				t.Fatalf("%s: err = %v, want KindBadRequest", name, err)
			}
		}
	})

	t.Run("canceled", func(t *testing.T) {
		s := newService(t, Config{Workers: 1})
		gate := make(chan struct{})
		claimed := make(chan struct{})
		var once sync.Once
		first, err := s.SubmitChase(context.Background(), ChaseRequest{
			Database: Payload{Instance: prog.Database},
			Ontology: OntologyRef{Set: prog.Rules},
			MaxAtoms: 50,
			Progress: func(chase.Stats) {
				once.Do(func() { close(claimed) })
				<-gate
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		<-claimed
		queued, err := s.SubmitDecide(context.Background(), DecideRequest{
			Database: Payload{Instance: prog.Database},
			Ontology: OntologyRef{Set: prog.Rules},
		})
		if err != nil {
			t.Fatal(err)
		}
		queued.Cancel()
		close(gate)
		r := queued.Wait()
		if !r.Canceled {
			t.Fatalf("result %+v, want Canceled", r)
		}
		var se *Error
		if !errors.As(r.Err, &se) || se.Kind != KindCanceled {
			t.Fatalf("err = %v, want KindCanceled", r.Err)
		}
		first.Wait()
	})
}

// TestDecideMethods: every decision method routed through the service
// returns the verdict internal/core computes directly.
func TestDecideMethods(t *testing.T) {
	progs := scenarios(t)
	s := newService(t, Config{Workers: 2})
	cases := []struct {
		scenario string
		method   string
		atomCap  int
	}{
		{"quickstart", "syntactic", 0},
		{"quickstart", "naive", 100000},
		{"quickstart", "ucq", 0},
		{"quickstart", "uniform", 0},
		{"linear", "ucq", 0},
		{"infinite", "syntactic", 0},
		{"guarded", "", 0}, // default method = syntactic
	}
	for _, c := range cases {
		prog, ok := progs[c.scenario]
		if !ok {
			t.Fatalf("missing scenario %s", c.scenario)
		}
		tk, err := s.SubmitDecide(context.Background(), DecideRequest{
			Name:     c.scenario + "/" + c.method,
			Database: Payload{Instance: prog.Database},
			Ontology: OntologyRef{Set: prog.Rules},
			Method:   c.method,
			AtomCap:  c.atomCap,
			Workers:  2,
		})
		if err != nil {
			t.Fatal(err)
		}
		r := tk.Wait()
		if r.Err != nil {
			t.Fatalf("%s/%s: %v", c.scenario, c.method, r.Err)
		}
		if r.Verdict == nil {
			t.Fatalf("%s/%s: no verdict in %+v", c.scenario, c.method, r)
		}
	}
}

// TestExperimentThroughService: an experiment request produces the exact
// table the experiments package renders directly.
func TestExperimentThroughService(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweeps are seconds-long; skipped in -short")
	}
	cache := compile.NewCache(0)
	s := newService(t, Config{Workers: 1, Cache: cache})
	tk, err := s.SubmitExperiment(context.Background(), ExperimentRequest{ID: "XP-DEPTH", Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	r := tk.Wait()
	if r.Err != nil || r.Table == nil {
		t.Fatalf("result %+v, err %v", r, r.Err)
	}
	e, err := experiments.Get("XP-DEPTH")
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.Run(experiments.Config{Quick: true, Workers: 1, Compiler: cache})
	if err != nil {
		t.Fatal(err)
	}
	var got, direct bytes.Buffer
	if err := r.Table.Render(&got); err != nil {
		t.Fatal(err)
	}
	if err := want.Render(&direct); err != nil {
		t.Fatal(err)
	}
	if got.String() != direct.String() {
		t.Fatalf("service table differs from direct run:\n%s\nvs\n%s", got.String(), direct.String())
	}
}

// TestDerivationHandle: RecordDerivation surfaces through the result's
// derivation handle and validates.
func TestDerivationHandle(t *testing.T) {
	prog := parserProg(t, "e(a, b). e(X, Y) -> ∃Z e(Y, Z).")
	s := newService(t, Config{Workers: 1})
	tk, err := s.SubmitChase(context.Background(), ChaseRequest{
		Database:         Payload{Instance: prog.Database},
		Ontology:         OntologyRef{Set: prog.Rules},
		MaxAtoms:         20,
		RecordDerivation: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := tk.Wait()
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	d := r.Derivation()
	if d == nil || len(d.Steps) == 0 {
		t.Fatal("no derivation handle on a RecordDerivation run")
	}
	if err := d.Validate(prog.Rules, r.Chase.Instance, r.Chase.Terminated); err != nil {
		t.Fatalf("derivation does not validate: %v", err)
	}
}

// parser helpers.
func parserProg(t *testing.T, src string) *parser.Program {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func parserDB(t *testing.T, src string) *logic.Instance {
	t.Helper()
	return parserProg(t, src).Database
}

func parserRules(t *testing.T, src string) *tgds.Set {
	t.Helper()
	return parserProg(t, src).Rules
}
