package service

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	rt "repro/internal/runtime"
)

// TestTicketSurface covers the envelope-facing accessors: names, ops,
// indexes, meta, drains — the surface a transport renders.
func TestTicketSurface(t *testing.T) {
	prog := parserProg(t, "p(a). p(X) -> q(X).")
	s := newService(t, Config{Workers: 1})
	if s.Cache() == nil {
		t.Fatal("service has no cache")
	}
	tk, err := s.SubmitChase(context.Background(), ChaseRequest{
		Meta:     RequestMeta{Tenant: "acme", Priority: PriorityLow},
		Database: Payload{Instance: prog.Database},
		Ontology: OntologyRef{Set: prog.Rules},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tk.Name() != "chase" || tk.Op() != OpChase || tk.Index() != 0 {
		t.Fatalf("ticket surface: name=%q op=%v index=%d", tk.Name(), tk.Op(), tk.Index())
	}
	s.Drain()
	r := tk.Wait()
	if r.Err != nil || r.Op != OpChase {
		t.Fatalf("result %+v", r)
	}
	if r.Stats().Atoms == 0 {
		t.Fatal("chase result reports no atoms")
	}
	if r.Derivation() != nil {
		t.Fatal("derivation handle without RecordDerivation")
	}

	// Non-chase results have zero stats and no derivation.
	dtk, err := s.SubmitDecide(context.Background(), DecideRequest{
		Database: Payload{Instance: prog.Database},
		Ontology: OntologyRef{Set: prog.Rules},
	})
	if err != nil {
		t.Fatal(err)
	}
	dr := dtk.Wait()
	if dr.Op != OpDecide || dr.Stats().Atoms != 0 || dr.Derivation() != nil {
		t.Fatalf("decide result surface: %+v", dr)
	}
	// A non-chase ticket's Progress is never nil — it is an
	// already-closed sentinel, so a consumer ranging over it (or
	// selecting on it) falls through immediately instead of blocking
	// forever on a nil channel.
	ch := dtk.Progress()
	if ch == nil {
		t.Fatal("decide ticket Progress() returned nil")
	}
	select {
	case _, ok := <-ch:
		if ok {
			t.Fatal("non-chase progress stream delivered a value")
		}
	default:
		t.Fatal("non-chase progress stream blocks; want an already-closed channel")
	}
}

// TestNamesAndTaxonomyStrings pins the rendered names a transport and
// request files rely on.
func TestNamesAndTaxonomyStrings(t *testing.T) {
	if s := fmt.Sprint(OpChase, " ", OpDecide, " ", OpExperiment, " ", OpRegistry); s != "chase decide experiment registry" {
		t.Fatalf("op names: %q", s)
	}
	kinds := []ErrorKind{KindInternal, KindBadRequest, KindUnknownOntology, KindDecode, KindOverloaded, KindUnavailable, KindCanceled}
	want := "internal bad-request unknown-ontology decode overloaded unavailable canceled"
	got := ""
	for i, k := range kinds {
		if i > 0 {
			got += " "
		}
		got += k.String()
	}
	if got != want {
		t.Fatalf("kind names: %q, want %q", got, want)
	}
	e := &Error{Kind: KindOverloaded, Op: OpChase, Name: "j", Err: rt.ErrQueueFull}
	if !errors.Is(e, rt.ErrQueueFull) {
		t.Fatal("Error does not unwrap to its sentinel")
	}
	if e.Error() == "" || classify(rt.ErrQueueFull) != KindOverloaded {
		t.Fatal("error rendering/classification broken")
	}
	if classify(errors.New("boom")) != KindInternal {
		t.Fatal("unknown error not classified internal")
	}
	if _, err := ParsePriority("urgent"); err == nil {
		t.Fatal("unknown priority parsed")
	}
	if _, err := ParseVariant("psychic"); err == nil {
		t.Fatal("unknown variant parsed")
	}
	for in, want := range map[string]Priority{"": PriorityNormal, "high": PriorityHigh, "low": PriorityLow} {
		if p, err := ParsePriority(in); err != nil || p != want {
			t.Fatalf("ParsePriority(%q) = %v, %v", in, p, err)
		}
	}
}

// TestRequestFileDataRules: the separate data+rules form,
// absolute-path rejection, and missing-file failures.
func TestRequestFileDataRules(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "db.dlgp", "p(a).")
	rulesAbs := writeFile(t, dir, "rules.dlgp", "p(X) -> q(X).")
	path := writeFile(t, dir, "req.json",
		`{"kind": "decide", "data": "db.dlgp", "rules": "rules.dlgp", "method": "naive", "atomCap": 500}`)
	f, err := LoadRequestFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// A request naming its rules by absolute path is rejected by the
	// shared resolver: references are confined to the request directory.
	escaped, err := LoadRequestFile(writeFile(t, dir, "escape.json", fmt.Sprintf(
		`{"kind": "decide", "data": "db.dlgp", "rules": %q}`, rulesAbs)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := escaped.DecideRequest(); err == nil || !strings.Contains(err.Error(), "escape") {
		t.Fatalf("absolute rules path accepted: %v", err)
	}
	req, err := f.DecideRequest()
	if err != nil {
		t.Fatal(err)
	}
	if req.Method != "naive" || req.AtomCap != 500 {
		t.Fatalf("envelope %+v", req)
	}
	if req.Database.Instance == nil || req.Database.Instance.Len() != 1 || req.Ontology.Set.Len() != 1 {
		t.Fatalf("inputs not loaded: %+v", req)
	}
	s := newService(t, Config{Workers: 1})
	tk, err := s.SubmitDecide(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if r := tk.Wait(); r.Err != nil || r.Verdict == nil {
		t.Fatalf("result %+v err %v", r, r.Err)
	}

	// Missing referenced files fail at envelope build time.
	missing, err := LoadRequestFile(writeFile(t, dir, "missing.json", `{"kind": "chase", "program": "nope.dlgp"}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := missing.ChaseRequest(); err == nil {
		t.Fatal("missing program accepted")
	}
	if _, err := LoadRequestFile(filepath.Join(dir, "absent.json")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("absent request file: %v", err)
	}
	// An experiment file without an id fails.
	noid, err := LoadRequestFile(writeFile(t, dir, "noid.json", `{"kind": "experiment"}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := noid.ExperimentRequest(); err == nil {
		t.Fatal("experiment file without id accepted")
	}
}
