package service

import (
	"encoding/hex"
	"net/http"
	"strconv"
	"sync"

	"repro/internal/compile"
	"repro/internal/qos"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// svcTelemetry holds the service layer's pre-resolved metric handles.
// Like the scheduler's, it is nil when Config.Telemetry carries no
// registry, and every instrumentation site guards on that — the
// disabled service adds nothing but nil checks to the submit path.
type svcTelemetry struct {
	requests *telemetry.CounterVec // service_requests_total{op,lane,tenant}
	byOnt    *telemetry.CounterVec // service_requests_by_ontology_total{ontology}

	qosRequests *telemetry.CounterVec // service_qos_requests_total{mode,outcome}
	qosSlack    *telemetry.Histogram  // service_qos_deadline_slack_seconds
	qosLearned  *telemetry.Counter    // service_qos_bounds_learned_total
}

// newSvcTelemetry wires the service families into tel's registry and
// bridges the subsystems that keep their own counters: the compile
// cache (published via a snapshot collector) and the wire codec (via
// its registered-meter seam). It returns the meter's release so Close
// can withdraw exactly this service's registration — concurrent
// Services each keep their own codec byte accounting, and Close order
// does not matter.
func newSvcTelemetry(tel *telemetry.Telemetry, cache *compile.Cache) (*svcTelemetry, func()) {
	if !tel.Enabled() {
		return nil, nil
	}
	r := tel.Registry
	m := &svcTelemetry{
		requests: r.CounterVec("service_requests_total",
			"Requests admitted through the service surface, by operation, priority lane, and tenant.",
			"op", "lane", "tenant"),
		byOnt: r.CounterVec("service_requests_by_ontology_total",
			"Requests by ontology fingerprint prefix (inline = ontology attached to the request).",
			"ontology"),
		qosRequests: r.CounterVec("service_qos_requests_total",
			"Finished requests by QoS mode (exact, bounded, anytime) and outcome (terminated, truncated, canceled, error).",
			"mode", "outcome"),
		qosSlack: r.Histogram("service_qos_deadline_slack_seconds",
			"Unused fraction of an anytime deadline: deadline minus the job's wall clock, clamped at zero.",
			[]float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5}),
		qosLearned: r.Counter("service_qos_bounds_learned_total",
			"Termination bounds stored by learn-mode runs."),
	}
	registerCacheCollector(r, cache)
	release := wire.RegisterMeter(&wireMeter{
		encoded: r.Counter("wire_encode_bytes",
			"Bytes produced by wire snapshot/delta encodes."),
		decoded: r.Counter("wire_decode_bytes",
			"Bytes consumed by successful wire snapshot/delta decodes."),
	})
	return m, release
}

// observeRequest bills one admitted request. The ontology label is the
// fingerprint's first 8 hex digits — low-cardinality under the family
// cap, yet enough to tell fleets apart — "inline" when the request
// carries Σ itself, "none" for ontology-less requests (experiments).
func (m *svcTelemetry) observeRequest(op Op, meta RequestMeta, ref OntologyRef) {
	tenant := meta.Tenant
	if tenant == "" {
		tenant = "anon"
	}
	m.requests.With(op.String(), meta.Priority.String(), tenant).Inc()
	ont := "none"
	switch {
	case ref.Set != nil:
		ont = "inline"
	case ref.Fingerprint != (compile.Fingerprint{}):
		ont = hex.EncodeToString(ref.Fingerprint[:4])
	}
	m.byOnt.With(ont).Inc()
}

// observeQoS bills one finished request's QoS outcome: the per-mode
// counter, the deadline-slack histogram for anytime runs, and the
// learned-bound counter for learn-mode runs that finished with a result
// to record. Called once per ticket, from the first Wait.
func (m *svcTelemetry) observeQoS(dec qos.Decision, r Result) {
	outcome := "terminated"
	switch {
	case r.Canceled:
		outcome = "canceled"
	case r.Err != nil:
		outcome = "error"
	case r.TimedOut, r.Chase != nil && !r.Chase.Terminated:
		outcome = "truncated"
	}
	m.qosRequests.With(dec.Mode.String(), outcome).Inc()
	if dec.Deadline > 0 {
		slack := (dec.Deadline - r.Wall).Seconds()
		if slack < 0 {
			slack = 0
		}
		m.qosSlack.Observe(slack)
	}
	if dec.Learn && r.Err == nil && r.Chase != nil {
		m.qosLearned.Inc()
	}
}

// registerCacheCollector publishes the compile cache's own counters
// through the registry: a Snapshot-time collector converts the cache's
// cumulative Stats into counter deltas (hits, misses, evictions) and
// gauge levels (bytes, entries). The collector keeps its last-seen
// cursor under a lock so concurrent snapshots never double-bill.
func registerCacheCollector(r *telemetry.Registry, cache *compile.Cache) {
	hits := r.Counter("compile_cache_hits",
		"Compilation cache artifact hits.")
	misses := r.Counter("compile_cache_misses",
		"Compilation cache artifact misses (first build of an artifact).")
	evictions := r.Counter("compile_cache_evictions",
		"Compilation cache entries evicted (LRU or byte-budget pressure).")
	bytes := r.Gauge("compile_cache_bytes",
		"Approximate bytes held by cached compilation artifacts.")
	entries := r.Gauge("compile_cache_entries",
		"Ontology entries resident in the compilation cache.")
	var (
		mu   sync.Mutex
		prev compile.Stats
	)
	r.AddCollector(func() {
		st := cache.Stats()
		mu.Lock()
		hits.Add(monotone(st.Hits, prev.Hits))
		misses.Add(monotone(st.Misses, prev.Misses))
		evictions.Add(monotone(st.Evictions, prev.Evictions))
		prev = st
		mu.Unlock()
		bytes.Set(st.Bytes)
		entries.Set(int64(st.Entries))
	})
}

// monotone is cur-prev clamped at zero, so a reset cache never
// underflows the published counters.
func monotone(cur, prev uint64) uint64 {
	if cur < prev {
		return 0
	}
	return cur - prev
}

// wireMeter adapts the codec's Meter seam onto two registry counters.
type wireMeter struct {
	encoded *telemetry.Counter
	decoded *telemetry.Counter
}

func (m *wireMeter) WireEncoded(n int) { m.encoded.Add(uint64(n)) }
func (m *wireMeter) WireDecoded(n int) { m.decoded.Add(uint64(n)) }

// Metrics snapshots the service's registry — the programmatic face of
// the /metrics endpoint. It returns nil when the service was built
// without telemetry.
func (s *Service) Metrics() *telemetry.Snapshot {
	if !s.tel.Enabled() {
		return nil
	}
	return s.tel.Registry.Snapshot()
}

// Telemetry returns the service's telemetry (nil when disabled) — the
// registry and trace sink the front end wired in via Config.
func (s *Service) Telemetry() *telemetry.Telemetry { return s.tel }

// Handler returns the service's serving-plane health surface — the
// telemetry HTTP handler (GET /healthz, /metrics, /metrics.json)
// backed by this service's registry, with live scheduler and cache
// health fields — or nil when the service was built without telemetry.
func (s *Service) Handler() http.Handler {
	if !s.tel.Enabled() {
		return nil
	}
	return telemetry.Handler(s.tel.Registry, func() map[string]string {
		return map[string]string{
			"workers":       strconv.Itoa(s.sched.Workers()),
			"queue_bound":   strconv.Itoa(s.sched.QueueBound()),
			"queue_len":     strconv.Itoa(s.sched.QueueLen()),
			"cache_entries": strconv.Itoa(s.cache.Len()),
		}
	})
}
