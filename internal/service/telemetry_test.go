package service

import (
	"bytes"
	"context"
	"encoding/hex"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/telemetry"
	"repro/internal/wire"
)

// TestServiceTelemetryDisabled: a service without telemetry keeps the
// whole surface nil-safe — Metrics, Telemetry, Handler.
func TestServiceTelemetryDisabled(t *testing.T) {
	s := newService(t, Config{Workers: 1})
	if s.Metrics() != nil || s.Telemetry() != nil || s.Handler() != nil {
		t.Fatal("disabled service exposes telemetry surfaces")
	}
}

// TestServiceRequestMetrics: every submitted request is billed to
// service_requests_total{op,lane,tenant} and to its ontology
// fingerprint prefix ("inline" for attached Σ).
func TestServiceRequestMetrics(t *testing.T) {
	prog := parserProg(t, "p(a). p(X) -> q(X).")
	tel := telemetry.New()
	s := newService(t, Config{Workers: 1, Telemetry: tel})

	// One inline chase (tenant acme, high lane), one fingerprinted
	// chase, one decide, one experiment.
	if _, err := s.SubmitChase(context.Background(), ChaseRequest{
		Meta:     RequestMeta{Tenant: "acme", Priority: PriorityHigh},
		Database: Payload{Instance: prog.Database},
		Ontology: OntologyRef{Set: prog.Rules},
	}); err != nil {
		t.Fatal(err)
	}
	h, err := s.RegisterOntology(prog.Rules)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.SubmitByFingerprint(context.Background(), h.Fingerprint,
		Payload{Instance: prog.Database}, ChaseRequest{}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SubmitDecide(context.Background(), DecideRequest{
		Database: Payload{Instance: prog.Database},
		Ontology: OntologyRef{Set: prog.Rules},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SubmitExperiment(context.Background(), ExperimentRequest{
		ID: "XP-DEPTH", Quick: true,
	}); err != nil {
		t.Fatal(err)
	}
	s.Drain()

	snap := s.Metrics()
	for _, c := range []struct {
		values []string
		want   float64
	}{
		{[]string{"chase", "high", "acme"}, 1},
		{[]string{"chase", "normal", "anon"}, 1},
		{[]string{"decide", "normal", "anon"}, 1},
		{[]string{"experiment", "normal", "anon"}, 1},
	} {
		if got, ok := snap.GetSeries("service_requests_total", c.values...); !ok || got != c.want {
			t.Fatalf("service_requests_total%v = %v, %v (want %v)", c.values, got, ok, c.want)
		}
	}
	prefix := hex.EncodeToString(h.Fingerprint[:4])
	if got, _ := snap.GetSeries("service_requests_by_ontology_total", prefix); got != 1 {
		t.Fatalf("by-ontology{%s} = %v, want 1", prefix, got)
	}
	if got, _ := snap.GetSeries("service_requests_by_ontology_total", "inline"); got != 2 {
		t.Fatalf("by-ontology{inline} = %v, want 2", got)
	}
	if got, _ := snap.GetSeries("service_requests_by_ontology_total", "none"); got != 1 {
		t.Fatalf("by-ontology{none} = %v, want 1 (the experiment)", got)
	}
	// The compile-cache bridge published through the same snapshot.
	if _, ok := snap.Get("compile_cache_hits"); !ok {
		t.Fatal("compile_cache_hits missing from snapshot")
	}
	misses, _ := snap.Get("compile_cache_misses")
	if misses <= 0 {
		t.Fatalf("compile_cache_misses = %v, want > 0", misses)
	}
	if entries, _ := snap.Get("compile_cache_entries"); entries <= 0 {
		t.Fatalf("compile_cache_entries = %v, want > 0", entries)
	}
}

// TestServiceWireMeter: wire payload decodes and EncodeChase encodes
// feed wire_decode_bytes / wire_encode_bytes while the service is live,
// and Close restores the previous process-wide meter.
func TestServiceWireMeter(t *testing.T) {
	prog := parserProg(t, "p(a). p(X) -> q(X).")
	snapBytes := wire.EncodeSnapshot(prog.Database)

	tel := telemetry.New()
	s := New(Config{Workers: 1, Telemetry: tel})
	tk, err := s.SubmitChase(context.Background(), ChaseRequest{
		Database: Payload{Snapshot: snapBytes},
		Ontology: OntologyRef{Set: prog.Rules},
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := tk.EncodeChase()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty encoded result")
	}
	// The encoded result round-trips to the materialized instance.
	dec, err := wire.DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Len() != tk.Wait().Chase.Instance.Len() {
		t.Fatal("encoded result does not round-trip")
	}

	m := s.Metrics()
	decoded, _ := m.Get("wire_decode_bytes")
	if decoded < float64(len(snapBytes)) {
		t.Fatalf("wire_decode_bytes = %v, want >= %d", decoded, len(snapBytes))
	}
	encoded, _ := m.Get("wire_encode_bytes")
	if encoded < float64(len(data)) {
		t.Fatalf("wire_encode_bytes = %v, want >= %d", encoded, len(data))
	}

	// Close withdraws the registration: encodes after Close no longer
	// bill this service's registry.
	s.Close()
	_ = wire.EncodeSnapshot(prog.Database)
	after, _ := s.Metrics().Get("wire_encode_bytes")
	if after != encoded {
		t.Fatalf("post-Close encode billed a closed service: %v -> %v", encoded, after)
	}

	// EncodeChase on a non-chase result fails typed.
	s2 := newService(t, Config{Workers: 1})
	dtk, err := s2.SubmitDecide(context.Background(), DecideRequest{
		Database: Payload{Instance: prog.Database},
		Ontology: OntologyRef{Set: prog.Rules},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dtk.EncodeChase(); err == nil {
		t.Fatal("EncodeChase on a decide ticket succeeded")
	}
}

// TestServiceEncodeTraceSpan: a traced chase job's EncodeChase records
// the terminal "encode" span.
func TestServiceEncodeTraceSpan(t *testing.T) {
	prog := parserProg(t, "p(a). p(X) -> q(X).")
	tel := telemetry.New()
	tel.Trace = telemetry.NewTraceSink()
	s := newService(t, Config{Workers: 1, Telemetry: tel})
	tk, err := s.SubmitChase(context.Background(), ChaseRequest{
		Database: Payload{Instance: prog.Database},
		Ontology: OntologyRef{Set: prog.Rules},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.EncodeChase(); err != nil {
		t.Fatal(err)
	}
	events := tel.Trace.Events()
	if len(events) == 0 {
		t.Fatal("no trace events")
	}
	last := events[len(events)-1]
	if last.Span != "encode" {
		t.Fatalf("last span = %q, want encode (all: %+v)", last.Span, events)
	}
	var b bytes.Buffer
	if _, err := tel.Trace.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"span": "admit"`) {
		t.Fatalf("trace rendering misses the admit span:\n%s", b.String())
	}
}

// TestServiceHandler: the health surface serves liveness with scheduler
// and cache fields plus both metric expositions.
func TestServiceHandler(t *testing.T) {
	prog := parserProg(t, "p(a). p(X) -> q(X).")
	tel := telemetry.New()
	s := newService(t, Config{Workers: 2, QueueBound: 4, Telemetry: tel})
	tk, err := s.SubmitChase(context.Background(), ChaseRequest{
		Database: Payload{Instance: prog.Database},
		Ontology: OntologyRef{Set: prog.Rules},
	})
	if err != nil {
		t.Fatal(err)
	}
	tk.Wait()

	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	want := `{"status": "ok", "cache_entries": "1", "queue_bound": "4", "queue_len": "0", "workers": "2"}` + "\n"
	if string(body) != want {
		t.Fatalf("healthz = %q, want %q", body, want)
	}
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `service_requests_total{op="chase",lane="normal",tenant="anon"} 1`) {
		t.Fatalf("metrics exposition misses the request counter:\n%s", body)
	}
}

// TestTwoServiceWireMeters: two concurrent telemetry-enabled Services —
// exactly what cmd/chased plus a test coordinator create in one process
// — each bill codec traffic to their own registry, and closing the
// FIRST-constructed one leaves the second's accounting live. Under the
// old process-global SetMeter, the second install stomped the first and
// the inverted Close restored a stale meter.
func TestTwoServiceWireMeters(t *testing.T) {
	prog := parserProg(t, "p(a). p(X) -> q(X).")
	snap := wire.EncodeSnapshot(prog.Database)

	tel1, tel2 := telemetry.New(), telemetry.New()
	s1 := New(Config{Workers: 1, Telemetry: tel1})
	s2 := New(Config{Workers: 1, Telemetry: tel2})
	defer s2.Close()

	submit := func(s *Service) {
		t.Helper()
		tk, err := s.SubmitChase(context.Background(), ChaseRequest{
			Database: Payload{Snapshot: snap},
			Ontology: OntologyRef{Set: prog.Rules},
		})
		if err != nil {
			t.Fatal(err)
		}
		if r := tk.Wait(); r.Err != nil {
			t.Fatal(r.Err)
		}
	}

	// A decode through either service bills BOTH registries: the meter
	// seam is additive, not last-install-wins.
	submit(s1)
	d1, _ := s1.Metrics().Get("wire_decode_bytes")
	d2, _ := s2.Metrics().Get("wire_decode_bytes")
	if d1 < float64(len(snap)) || d2 < float64(len(snap)) {
		t.Fatalf("decode billing stomped: s1=%v s2=%v, want both >= %d", d1, d2, len(snap))
	}

	// Closing s1 (constructed first — the ordering inversion) must leave
	// s2's meter registered: further traffic keeps billing s2 and stops
	// billing s1.
	s1.Close()
	submit(s2)
	d1after, _ := s1.Metrics().Get("wire_decode_bytes")
	d2after, _ := s2.Metrics().Get("wire_decode_bytes")
	if d1after != d1 {
		t.Fatalf("closed service still billed: %v -> %v", d1, d1after)
	}
	if d2after < d2+float64(len(snap)) {
		t.Fatalf("surviving service lost its meter: %v -> %v", d2, d2after)
	}
}
