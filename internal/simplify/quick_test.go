package simplify

import (
	"testing"
	"testing/quick"

	"repro/internal/logic"
)

// Property: id patterns are well-formed (first occurrence order: p[0]=1,
// p[i] ≤ max(prefix)+1) and consistent with Unique (max id = |unique|).
func TestIDPatternWellFormed(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 10 {
			raw = raw[:10]
		}
		args := make([]logic.Term, len(raw))
		for i, r := range raw {
			args[i] = logic.Constant(string(rune('a' + r%5)))
		}
		p := IDPattern(args)
		if p[0] != 1 {
			return false
		}
		max := 0
		for _, id := range p {
			if id < 1 || id > max+1 {
				return false
			}
			if id > max {
				max = id
			}
		}
		return max == len(Unique(args))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: simplification is pattern-faithful: two tuples get the same
// pattern predicate iff they have the same equality type (t_i = t_j ⟺
// u_i = u_j).
func TestSimplifyAtomPatternFaithful(t *testing.T) {
	f := func(a, b []uint8) bool {
		n := len(a)
		if n == 0 || n > 6 || len(b) < n {
			return true
		}
		b = b[:n]
		argsA := make([]logic.Term, n)
		argsB := make([]logic.Term, n)
		for i := 0; i < n; i++ {
			argsA[i] = logic.Constant(string(rune('a' + a[i]%3)))
			argsB[i] = logic.Constant(string(rune('a' + b[i]%3)))
		}
		pred := logic.Predicate{Name: "R", Arity: n}
		sA := Atom(logic.NewAtom(pred, argsA...))
		sB := Atom(logic.NewAtom(pred, argsB...))
		sameType := true
		for i := 0; i < n && sameType; i++ {
			for j := i + 1; j < n; j++ {
				if (argsA[i] == argsA[j]) != (argsB[i] == argsB[j]) {
					sameType = false
					break
				}
			}
		}
		return (sA.Pred == sB.Pred) == sameType
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: the pattern predicate round-trips through its name.
func TestPatternPredicateRoundTripQuick(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 8 {
			return true
		}
		args := make([]logic.Term, len(raw))
		for i, r := range raw {
			args[i] = logic.Constant(string(rune('a' + r%4)))
		}
		pattern := IDPattern(args)
		p := PatternPredicate(logic.Predicate{Name: "Rel", Arity: len(args)}, pattern)
		base, got, ok := ParsePatternPredicate(p)
		if !ok || base != "Rel" || len(got) != len(pattern) {
			return false
		}
		for i := range pattern {
			if got[i] != pattern[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: every specialization is idempotent as a variable mapping
// (f(f(x)) = f(x)) and its image variables are fixpoints.
func TestSpecializationsIdempotent(t *testing.T) {
	vars := []logic.Variable{"A", "B", "C", "D"}
	for _, f := range Specializations(vars) {
		for _, v := range vars {
			img := f[v]
			if f[img] != img {
				t.Fatalf("specialization %v not idempotent at %v", f, v)
			}
		}
	}
}
