// Package simplify implements the simplification technique of Section 7 of
// the paper, which converts linear TGDs into simple linear TGDs while
// preserving chase finiteness and term depth (Proposition 7.3).
//
// For a tuple t̄, unique(t̄) keeps the first occurrence of each term and
// id(t̄) records the repetition pattern; the simplification of an atom
// R(t̄) is the atom R⟨id(t̄)⟩(unique(t̄)) over the pattern predicate
// R⟨id(t̄)⟩. A specialization of the body variables merges variables in all
// "collapse-compatible" ways; the simplification of a linear TGD is the
// set of simplifications induced by its specializations (Definition 7.2).
package simplify

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/logic"
	"repro/internal/tgds"
)

// IDPattern returns id(t̄): for each position, the 1-based index of the
// position of unique(t̄) at which the term appears. For example,
// id((x,y,x,z,y)) = (1,2,1,3,2).
func IDPattern(args []logic.Term) []int {
	pattern := make([]int, len(args))
	index := make(map[string]int)
	next := 1
	for i, t := range args {
		k := t.Key()
		if id, ok := index[k]; ok {
			pattern[i] = id
			continue
		}
		index[k] = next
		pattern[i] = next
		next++
	}
	return pattern
}

// Unique returns unique(t̄): the tuple with only the first occurrence of
// each term kept.
func Unique(args []logic.Term) []logic.Term {
	var out []logic.Term
	seen := make(map[string]bool)
	for _, t := range args {
		if k := t.Key(); !seen[k] {
			seen[k] = true
			out = append(out, t)
		}
	}
	return out
}

// PatternPredicate returns the pattern predicate R⟨ℓ1.ℓ2...⟩ for the base
// predicate and pattern; its arity is the number of distinct pattern ids.
func PatternPredicate(base logic.Predicate, pattern []int) logic.Predicate {
	max := 0
	parts := make([]string, len(pattern))
	for i, l := range pattern {
		parts[i] = strconv.Itoa(l)
		if l > max {
			max = l
		}
	}
	name := base.Name + "#" + strings.Join(parts, ".")
	return logic.Predicate{Name: name, Arity: max}
}

// ParsePatternPredicate inverts PatternPredicate. It reports ok=false when
// the predicate is not a pattern predicate.
func ParsePatternPredicate(p logic.Predicate) (base string, pattern []int, ok bool) {
	i := strings.LastIndex(p.Name, "#")
	if i < 0 {
		return "", nil, false
	}
	base = p.Name[:i]
	for _, part := range strings.Split(p.Name[i+1:], ".") {
		n, err := strconv.Atoi(part)
		if err != nil {
			return "", nil, false
		}
		pattern = append(pattern, n)
	}
	return base, pattern, true
}

// Atom returns simple(α) = R⟨id(t̄)⟩(unique(t̄)).
func Atom(a *logic.Atom) *logic.Atom {
	pattern := IDPattern(a.Args)
	return logic.NewAtom(PatternPredicate(a.Pred, pattern), Unique(a.Args)...)
}

// Database returns simple(D): the database with every fact simplified.
func Database(db *logic.Instance) *logic.Instance {
	out := logic.NewInstance()
	for _, a := range db.Atoms() {
		out.Add(Atom(a))
	}
	return out
}

// Specializations enumerates all specializations of the variable tuple:
// functions f over the distinct variables (in order of first occurrence)
// with f(x1) = x1 and f(xi) ∈ {f(x1), ..., f(x(i-1)), xi}. Each result
// maps variable -> image variable.
func Specializations(vars []logic.Variable) []map[logic.Variable]logic.Variable {
	if len(vars) == 0 {
		return []map[logic.Variable]logic.Variable{{}}
	}
	results := []map[logic.Variable]logic.Variable{
		{vars[0]: vars[0]},
	}
	for _, v := range vars[1:] {
		var next []map[logic.Variable]logic.Variable
		for _, f := range results {
			// Candidate images: the distinct images so far, plus v itself.
			seen := map[logic.Variable]bool{}
			var candidates []logic.Variable
			for _, u := range vars {
				if img, ok := f[u]; ok && !seen[img] {
					seen[img] = true
					candidates = append(candidates, img)
				}
			}
			if !seen[v] {
				candidates = append(candidates, v)
			}
			for _, img := range candidates {
				g := make(map[logic.Variable]logic.Variable, len(f)+1)
				for k, w := range f {
					g[k] = w
				}
				g[v] = img
				next = append(next, g)
			}
		}
		results = next
	}
	return results
}

// TGD returns simple(σ): all simplifications of the linear TGD σ induced
// by specializations of its body variables. It errors when σ is not
// linear. Duplicate simplifications (arising from repeated body variables)
// are removed.
func TGD(t *tgds.TGD) ([]*tgds.TGD, error) {
	if !t.IsLinear() {
		return nil, fmt.Errorf("simplify: TGD %v is not linear", t)
	}
	body := t.Body[0]
	vars := body.Variables()
	var out []*tgds.TGD
	seen := make(map[string]bool)
	for _, f := range Specializations(vars) {
		subst := make(logic.Substitution, len(f))
		for v, img := range f {
			subst[v] = img
		}
		sBody := Atom(subst.ApplyAtom(body))
		sHead := make([]*logic.Atom, len(t.Head))
		for i, h := range t.Head {
			sHead[i] = Atom(subst.ApplyAtom(h))
		}
		st, err := tgds.New([]*logic.Atom{sBody}, sHead)
		if err != nil {
			return nil, fmt.Errorf("simplify: %v", err)
		}
		if !seen[st.Key()] {
			seen[st.Key()] = true
			out = append(out, st)
		}
	}
	return out, nil
}

// Set returns simple(Σ) for a set of linear TGDs.
func Set(sigma *tgds.Set) (*tgds.Set, error) {
	out := tgds.NewSet()
	for _, t := range sigma.TGDs {
		simplified, err := TGD(t)
		if err != nil {
			return nil, err
		}
		for _, st := range simplified {
			out.Add(st)
		}
	}
	return out, nil
}
