package simplify

import (
	"testing"

	"repro/internal/logic"
	"repro/internal/parser"
	"repro/internal/tgds"
)

func TestIDPatternPaperExample(t *testing.T) {
	// id((x,y,x,z,y)) = (1,2,1,3,2), unique = (x,y,z).
	x, y, z := logic.Variable("X"), logic.Variable("Y"), logic.Variable("Z")
	args := []logic.Term{x, y, x, z, y}
	got := IDPattern(args)
	want := []int{1, 2, 1, 3, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("id pattern = %v, want %v", got, want)
		}
	}
	u := Unique(args)
	if len(u) != 3 || u[0] != logic.Term(x) || u[1] != logic.Term(y) || u[2] != logic.Term(z) {
		t.Fatalf("unique = %v", u)
	}
}

func TestPatternPredicateRoundTrip(t *testing.T) {
	base := logic.Predicate{Name: "R", Arity: 5}
	p := PatternPredicate(base, []int{1, 2, 1, 3, 2})
	if p.Arity != 3 {
		t.Fatalf("pattern predicate arity = %d, want 3", p.Arity)
	}
	gotBase, gotPattern, ok := ParsePatternPredicate(p)
	if !ok || gotBase != "R" {
		t.Fatalf("parse: base=%q ok=%v", gotBase, ok)
	}
	if len(gotPattern) != 5 || gotPattern[2] != 1 {
		t.Fatalf("pattern = %v", gotPattern)
	}
	if _, _, ok := ParsePatternPredicate(base); ok {
		t.Fatal("plain predicate must not parse as pattern")
	}
}

func TestSimplifyAtomAndDatabase(t *testing.T) {
	a, b := logic.Constant("a"), logic.Constant("b")
	atom := logic.MakeAtom("R", a, a, b)
	s := Atom(atom)
	if s.Pred.Name != "R#1.1.2" || s.Pred.Arity != 2 {
		t.Fatalf("simplified = %v", s)
	}
	db := logic.NewDatabase(atom, logic.MakeAtom("R", a, b, b))
	sdb := Database(db)
	if sdb.Len() != 2 {
		t.Fatalf("|simple(D)| = %d", sdb.Len())
	}
}

// Specializations are in bijection with ordered set partitions of the
// variables; their number is the Bell number.
func TestSpecializationsCount(t *testing.T) {
	bell := []int{1, 1, 2, 5, 15}
	for n := 0; n <= 4; n++ {
		vars := make([]logic.Variable, n)
		for i := range vars {
			vars[i] = logic.Variable(string(rune('A' + i)))
		}
		got := len(Specializations(vars))
		if got != bell[n] {
			t.Fatalf("specializations(%d vars) = %d, want Bell = %d", n, got, bell[n])
		}
	}
}

func TestSpecializationsForm(t *testing.T) {
	x, y := logic.Variable("X"), logic.Variable("Y")
	specs := Specializations([]logic.Variable{x, y})
	// {X->X, Y->Y} and {X->X, Y->X}.
	if len(specs) != 2 {
		t.Fatalf("specs = %v", specs)
	}
	for _, f := range specs {
		if f[x] != x {
			t.Fatal("f(x1) must be x1")
		}
		if f[y] != x && f[y] != y {
			t.Fatalf("f(y) = %v", f[y])
		}
	}
}

// Example 7.1's simplification: R(x,x) -> ∃z R(z,x) has the single-
// variable body, so simple(Σ) = { R#1.1(x) -> ∃z R#1.2(z,x) }.
func TestSimplifyExample71(t *testing.T) {
	sigma := parser.MustParseRules(`r(X, X) -> ∃Z r(Z, X).`)
	s, err := Set(sigma)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("|simple(Σ)| = %d, want 1\n%v", s.Len(), s)
	}
	st := s.TGDs[0]
	if st.Body[0].Pred.Name != "r#1.1" || st.Body[0].Pred.Arity != 1 {
		t.Fatalf("body = %v", st.Body[0])
	}
	if st.Head[0].Pred.Name != "r#1.2" || st.Head[0].Pred.Arity != 2 {
		t.Fatalf("head = %v", st.Head[0])
	}
	if !st.IsSimpleLinear() {
		t.Fatal("simplification must be simple linear")
	}
}

// A non-trivial body spawns one simplified TGD per specialization.
func TestSimplifyProducesAllSpecializations(t *testing.T) {
	sigma := parser.MustParseRules(`r(X, Y) -> ∃Z s(X, Y, Z).`)
	s, err := Set(sigma)
	if err != nil {
		t.Fatal(err)
	}
	// Two specializations: identity and Y->X.
	if s.Len() != 2 {
		t.Fatalf("|simple(Σ)| = %d, want 2\n%v", s.Len(), s)
	}
	for _, st := range s.TGDs {
		if !st.IsSimpleLinear() {
			t.Fatalf("%v is not simple linear", st)
		}
	}
}

func TestSimplifyRejectsNonLinear(t *testing.T) {
	sigma := parser.MustParseRules(`r(X, Y), s(Y) -> p(X).`)
	if _, err := Set(sigma); err == nil {
		t.Fatal("non-linear TGD must be rejected")
	}
}

func TestSimplifyHeadCollapses(t *testing.T) {
	// Head repetition must produce the collapsed pattern predicate.
	sigma := parser.MustParseRules(`r(X) -> s(X, X).`)
	s, err := Set(sigma)
	if err != nil {
		t.Fatal(err)
	}
	head := s.TGDs[0].Head[0]
	if head.Pred.Name != "s#1.1" || head.Pred.Arity != 1 {
		t.Fatalf("head = %v", head)
	}
}

func TestSimplifySetArityBound(t *testing.T) {
	// ar(simple(Σ)) <= ar(Σ) (proof of Lemma 7.4).
	sigma := parser.MustParseRules(`
		r(X, Y, X) -> ∃Z s(X, Z, Z, Y).
		s(A, B, B, C) -> r(A, B, C).
	`)
	s, err := Set(sigma)
	if err != nil {
		t.Fatal(err)
	}
	if s.Arity() > sigma.Arity() {
		t.Fatalf("ar(simple(Σ)) = %d > ar(Σ) = %d", s.Arity(), sigma.Arity())
	}
	if got := s.Classify(); got != tgds.ClassSL {
		t.Fatalf("simple(Σ) class = %v", got)
	}
}
