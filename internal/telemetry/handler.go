package telemetry

import (
	"net/http"
	"sort"
	"strings"
)

// Handler exposes a registry over HTTP — the serving-plane health
// surface, and the first piece of the future cmd/chased worker binary:
//
//	GET /healthz      — liveness JSON: {"status": "ok", ...health()}
//	GET /metrics      — Prometheus text exposition
//	GET /metrics.json — expvar-style JSON exposition
//
// health, when non-nil, contributes extra healthz fields (queue depth,
// worker count, cache entries); its keys are rendered sorted, so the
// payload is deterministic for a quiesced process. Everything is
// computed per request from a fresh Snapshot — the handler holds no
// state beyond the registry reference.
func Handler(r *Registry, health func() map[string]string) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		if !methodOK(w, req) {
			return
		}
		fields := map[string]string{}
		if health != nil {
			for k, v := range health() {
				fields[k] = v
			}
		}
		keys := make([]string, 0, len(fields))
		for k := range fields {
			if k != "status" {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		var b strings.Builder
		b.WriteString(`{"status": "ok"`)
		for _, k := range keys {
			b.WriteString(", ")
			b.WriteString(jsonString(k))
			b.WriteString(": ")
			b.WriteString(jsonString(fields[k]))
		}
		b.WriteString("}\n")
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_, _ = w.Write([]byte(b.String()))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		if !methodOK(w, req) {
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.Snapshot().WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		if !methodOK(w, req) {
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.Snapshot().WriteJSON(w)
	})
	return mux
}

func methodOK(w http.ResponseWriter, req *http.Request) bool {
	if req.Method == http.MethodGet || req.Method == http.MethodHead {
		return true
	}
	http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	return false
}
