package telemetry

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs_total", "requests").Add(2)
	h := Handler(r, func() map[string]string {
		// A health callback trying to smuggle its own "status" is
		// ignored; other keys render sorted.
		return map[string]string{"workers": "4", "queue_len": "0", "status": "hacked"}
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	get := func(path string) (int, string, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
	}

	code, body, ctype := get("/healthz")
	if code != 200 || !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("healthz: %d %q", code, ctype)
	}
	if body != `{"status": "ok", "queue_len": "0", "workers": "4"}`+"\n" {
		t.Fatalf("healthz body: %q", body)
	}

	code, body, ctype = get("/metrics")
	if code != 200 || !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("metrics: %d %q", code, ctype)
	}
	if !strings.Contains(body, "reqs_total 2") {
		t.Fatalf("metrics body: %q", body)
	}

	code, body, ctype = get("/metrics.json")
	if code != 200 || !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("metrics.json: %d %q", code, ctype)
	}
	if !strings.Contains(body, `"reqs_total": 2`) {
		t.Fatalf("metrics.json body: %q", body)
	}

	// Non-GET/HEAD is rejected on every endpoint.
	for _, path := range []string{"/healthz", "/metrics", "/metrics.json"} {
		resp, err := http.Post(srv.URL+path, "text/plain", strings.NewReader("x"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("POST %s: %d, want 405", path, resp.StatusCode)
		}
	}

	// HEAD is allowed.
	resp, err := http.Head(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("HEAD /metrics: %d", resp.StatusCode)
	}
}

func TestHandlerNilHealth(t *testing.T) {
	srv := httptest.NewServer(Handler(NewRegistry(), nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != `{"status": "ok"}`+"\n" {
		t.Fatalf("healthz body: %q", body)
	}
}
