package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is a metric family's type.
type Kind uint8

const (
	// KindCounter is a monotonically increasing count.
	KindCounter Kind = iota
	// KindGauge is an instantaneous value that may move both ways.
	KindGauge
	// KindHistogram is a fixed-bucket distribution.
	KindHistogram
)

// String returns the Prometheus type name.
func (k Kind) String() string {
	switch k {
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "counter"
	}
}

// SeriesCap is the default per-family bound on distinct label sets.
// Once a family holds this many series, every further label combination
// collapses into one series whose label values are all "other" — the
// cardinality cap that keeps an abusive tenant from growing the
// registry without bound. Adjust per family with Vec SetCap before the
// first With.
const SeriesCap = 64

// OverflowLabel is the label value of the capped overflow series.
const OverflowLabel = "other"

// TimeBuckets is the conventional latency bucket ladder (seconds) used
// by the queue-wait and encode histograms: 10µs to 10s, decades.
var TimeBuckets = []float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10}

// Counter is a monotone event or byte count. Handles are resolved once
// (Registry.Counter or CounterVec.With) and updated with one atomic add
// — the allocation-free hot path.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous integer value (queue depth, cache bytes).
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-boundary distribution: Observe finds the first
// bucket whose upper bound holds v (the last, implicit +Inf bucket
// catches the rest) and bumps it, the total count, and the sum — all
// atomically, allocation-free.
type Histogram struct {
	bounds  []float64 // upper bounds, strictly increasing
	counts  []atomic.Uint64
	sumBits atomic.Uint64
	count   atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// labeled is one series slot: exactly one of c/g/h is live, per the
// family's kind.
type labeled struct {
	values []string
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family is one metric name's registration: its kind, label keys, and
// the capped series map.
type family struct {
	name   string
	help   string
	kind   Kind
	labels []string
	bounds []float64 // histogram families only

	mu       sync.RWMutex
	cap      int
	series   map[string]*labeled
	overflow *labeled // lazily created cap spill, all labels "other"
}

// Registry is a set of metric families. Registration is idempotent:
// asking for an existing name with the same kind and label keys returns
// the same family (and therefore the same handles), so layers sharing a
// registry converge on one series; a kind or label mismatch panics, as
// a programming error would under any metrics library.
type Registry struct {
	mu         sync.Mutex
	families   map[string]*family
	collectors []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// AddCollector registers fn to run at the start of every Snapshot —
// the bridge for subsystems that keep their own counters (the compile
// cache's Stats) and only need them published, not re-instrumented.
func (r *Registry) AddCollector(fn func()) {
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

// validName matches the conventional metric/label name charset.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// register resolves or creates the named family.
func (r *Registry) register(name, help string, kind Kind, bounds []float64, labels []string) *family {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l) {
			panic(fmt.Sprintf("telemetry: invalid label name %q on %s", l, name))
		}
	}
	if kind == KindHistogram {
		if len(bounds) == 0 {
			panic(fmt.Sprintf("telemetry: histogram %s needs at least one bucket bound", name))
		}
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				panic(fmt.Sprintf("telemetry: histogram %s bounds must be strictly increasing", name))
			}
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || !equalStrings(f.labels, labels) {
			panic(fmt.Sprintf("telemetry: %s re-registered with a different kind or label set", name))
		}
		return f
	}
	f := &family{
		name:   name,
		help:   help,
		kind:   kind,
		labels: append([]string(nil), labels...),
		bounds: append([]float64(nil), bounds...),
		cap:    SeriesCap,
		series: make(map[string]*labeled),
	}
	r.families[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Counter registers (or resolves) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, KindCounter, nil, nil).slot(nil).c
}

// Gauge registers (or resolves) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, KindGauge, nil, nil).slot(nil).g
}

// Histogram registers (or resolves) an unlabeled fixed-bucket
// histogram; bounds are the buckets' upper limits, strictly increasing
// (an implicit +Inf bucket is appended).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.register(name, help, KindHistogram, bounds, nil).slot(nil).h
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if len(labels) == 0 {
		panic(fmt.Sprintf("telemetry: %s: a vec needs labels (use Counter)", name))
	}
	return &CounterVec{r.register(name, help, KindCounter, nil, labels)}
}

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if len(labels) == 0 {
		panic(fmt.Sprintf("telemetry: %s: a vec needs labels (use Gauge)", name))
	}
	return &GaugeVec{r.register(name, help, KindGauge, nil, labels)}
}

// HistogramVec registers a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if len(labels) == 0 {
		panic(fmt.Sprintf("telemetry: %s: a vec needs labels (use Histogram)", name))
	}
	return &HistogramVec{r.register(name, help, KindHistogram, bounds, labels)}
}

// CounterVec is a labeled counter family; With resolves one series.
type CounterVec struct{ fam *family }

// With resolves the series for the given label values (one per label
// key, in registration order). Resolution is the slow path — hold the
// returned handle where updates are hot.
func (v *CounterVec) With(values ...string) *Counter { return v.fam.slot(values).c }

// SetCap adjusts the family's series cap (default SeriesCap).
func (v *CounterVec) SetCap(n int) *CounterVec { v.fam.setCap(n); return v }

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ fam *family }

// With resolves the series for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.fam.slot(values).g }

// SetCap adjusts the family's series cap (default SeriesCap).
func (v *GaugeVec) SetCap(n int) *GaugeVec { v.fam.setCap(n); return v }

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ fam *family }

// With resolves the series for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.fam.slot(values).h }

// SetCap adjusts the family's series cap (default SeriesCap).
func (v *HistogramVec) SetCap(n int) *HistogramVec { v.fam.setCap(n); return v }

func (f *family) setCap(n int) {
	if n < 1 {
		n = 1
	}
	f.mu.Lock()
	f.cap = n
	f.mu.Unlock()
}

// slot resolves (creating if necessary, capping if full) the series for
// the given label values.
func (f *family) slot(values []string) *labeled {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x1f")
	f.mu.RLock()
	s, ok := f.series[key]
	f.mu.RUnlock()
	if ok {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok = f.series[key]; ok {
		return s
	}
	if len(f.series) >= f.cap {
		// Cardinality cap: the family is full, so this — and every further
		// unknown — label combination shares the "other" series.
		if f.overflow == nil {
			over := make([]string, len(f.labels))
			for i := range over {
				over[i] = OverflowLabel
			}
			f.overflow = f.newSeries(over)
			f.series[strings.Join(over, "\x1f")] = f.overflow
		}
		return f.overflow
	}
	s = f.newSeries(append([]string(nil), values...))
	f.series[key] = s
	return s
}

func (f *family) newSeries(values []string) *labeled {
	s := &labeled{values: values}
	switch f.kind {
	case KindCounter:
		s.c = &Counter{}
	case KindGauge:
		s.g = &Gauge{}
	default:
		s.h = &Histogram{
			bounds: f.bounds,
			counts: make([]atomic.Uint64, len(f.bounds)+1),
		}
	}
	return s
}

// Snapshot materializes a deterministic snapshot: collectors run first,
// then every family (sorted by name) and every series (sorted by label
// values) is copied out. Concurrent writers are fine — each value is an
// atomic read — though a snapshot taken mid-update is only per-value
// consistent, as with any live metrics endpoint.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	collectors := append([]func(){}, r.collectors...)
	r.mu.Unlock()
	for _, fn := range collectors {
		fn()
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	snap := &Snapshot{Families: make([]Family, 0, len(fams))}
	for _, f := range fams {
		snap.Families = append(snap.Families, f.snapshot())
	}
	return snap
}

func (f *family) snapshot() Family {
	f.mu.RLock()
	series := make([]*labeled, 0, len(f.series))
	for _, s := range f.series {
		series = append(series, s)
	}
	f.mu.RUnlock()
	sort.Slice(series, func(i, j int) bool {
		a, b := series[i].values, series[j].values
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	fam := Family{
		Name:   f.name,
		Help:   f.help,
		Kind:   f.kind,
		Labels: append([]string(nil), f.labels...),
		Series: make([]Series, 0, len(series)),
	}
	for _, s := range series {
		out := Series{Values: append([]string(nil), s.values...)}
		switch f.kind {
		case KindCounter:
			out.Value = float64(s.c.Value())
		case KindGauge:
			out.Value = float64(s.g.Value())
		default:
			h := HistValue{
				Bounds: append([]float64(nil), f.bounds...),
				Counts: make([]uint64, len(s.h.counts)),
				Sum:    s.h.Sum(),
				Count:  s.h.Count(),
			}
			for i := range s.h.counts {
				h.Counts[i] = s.h.counts[i].Load()
			}
			out.Hist = &h
		}
		fam.Series = append(fam.Series, out)
	}
	return fam
}
