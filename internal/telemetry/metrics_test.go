package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "jobs")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g := r.Gauge("depth", "queue depth")
	g.Set(7)
	g.Add(-3)
	g.Add(1)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
	// Idempotent registration resolves the same handles.
	if r.Counter("jobs_total", "jobs") != c || r.Gauge("depth", "queue depth") != g {
		t.Fatal("re-registration returned different handles")
	}
}

// TestHistogramBucketBoundaries pins the bucket assignment rule: a
// value lands in the first bucket whose upper bound is >= it (bounds
// are inclusive upper limits, Prometheus-style), and everything above
// the last bound lands in the implicit +Inf bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 5, 6, 100} {
		h.Observe(v)
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d, want 8", h.Count())
	}
	if h.Sum() != 0.5+1+1.5+2+3+5+6+100 {
		t.Fatalf("sum = %g", h.Sum())
	}
	snap := r.Snapshot()
	hv := snap.Families[0].Series[0].Hist
	want := []uint64{2, 2, 2, 2} // (..1], (1..2], (2..5], (5..+Inf)
	for i, w := range want {
		if hv.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all %v)", i, hv.Counts[i], w, hv.Counts)
		}
	}
	// An observation exactly on a bound goes to that bound's bucket.
	h2 := r.Histogram("edge", "edge", []float64{10})
	h2.Observe(10)
	if s := r.Snapshot(); mustHist(t, s, "edge").Counts[0] != 1 {
		t.Fatal("boundary value did not land in its bound's bucket")
	}
}

func mustHist(t *testing.T, s *Snapshot, name string) *HistValue {
	t.Helper()
	for _, f := range s.Families {
		if f.Name == name {
			return f.Series[0].Hist
		}
	}
	t.Fatalf("no family %q", name)
	return nil
}

// TestSeriesCap: once a family holds its cap of distinct label sets,
// every unknown combination collapses into the all-"other" overflow
// series — the cardinality defense against abusive tenants.
func TestSeriesCap(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("reqs", "requests", "tenant").SetCap(2)
	v.With("acme").Inc()
	v.With("umbrella").Inc()
	v.With("attacker-1").Inc()
	v.With("attacker-2").Inc()
	v.With("attacker-2").Inc()
	// Known series are unaffected; the two unknowns share "other".
	snap := r.Snapshot()
	if got, ok := snap.GetSeries("reqs", "acme"); !ok || got != 1 {
		t.Fatalf("acme = %v, %v", got, ok)
	}
	if got, ok := snap.GetSeries("reqs", OverflowLabel); !ok || got != 3 {
		t.Fatalf("overflow = %v, %v (want 3)", got, ok)
	}
	if got, ok := snap.GetSeries("reqs", "attacker-1"); ok {
		t.Fatalf("capped label got its own series: %v", got)
	}
	// The overflow series pins the cap: re-resolving a known value
	// still works after the spill.
	v.With("acme").Inc()
	if got, _ := r.Snapshot().GetSeries("reqs", "acme"); got != 2 {
		t.Fatalf("acme after spill = %v", got)
	}
}

func TestRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("good_name", "")
	cases := map[string]func(){
		"invalid metric name": func() { r.Counter("bad-name", "") },
		"digit-first name":    func() { r.Counter("9lives", "") },
		"invalid label name":  func() { r.CounterVec("v1", "", "bad-label") },
		"kind mismatch":       func() { r.Gauge("good_name", "") },
		"label mismatch": func() {
			r.CounterVec("v2", "", "a")
			r.CounterVec("v2", "", "b")
		},
		"histogram no bounds": func() { r.Histogram("h1", "", nil) },
		"histogram unsorted bounds": func() {
			r.Histogram("h2", "", []float64{2, 1})
		},
		"vec without labels": func() { r.CounterVec("v3", "") },
		"gauge vec without labels": func() {
			r.GaugeVec("v4", "")
		},
		"histogram vec without labels": func() {
			r.HistogramVec("v5", "", []float64{1})
		},
		"wrong With arity": func() {
			r.CounterVec("v6", "", "a", "b").With("only-one")
		},
	}
	for name, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestVecKinds covers the gauge and histogram vec surfaces.
func TestVecKinds(t *testing.T) {
	r := NewRegistry()
	g := r.GaugeVec("levels", "", "shard").SetCap(8)
	g.With("0").Set(3)
	g.With("1").Set(4)
	h := r.HistogramVec("lat", "", []float64{1}, "lane").SetCap(8)
	h.With("high").Observe(0.5)
	h.With("high").Observe(2)
	snap := r.Snapshot()
	if v, ok := snap.GetSeries("levels", "1"); !ok || v != 4 {
		t.Fatalf("gauge series = %v, %v", v, ok)
	}
	found := false
	for _, f := range snap.Families {
		if f.Name == "lat" {
			found = true
			if f.Series[0].Hist.Count != 2 || f.Series[0].Hist.Counts[1] != 1 {
				t.Fatalf("hist series: %+v", f.Series[0].Hist)
			}
		}
	}
	if !found {
		t.Fatal("histogram family missing from snapshot")
	}
	// Histograms are invisible to the scalar getters.
	if _, ok := snap.Get("lat"); ok {
		t.Fatal("Get resolved a histogram")
	}
	if _, ok := snap.GetSeries("lat", "high"); ok {
		t.Fatal("GetSeries resolved a histogram")
	}
	if _, ok := snap.Get("absent"); ok {
		t.Fatal("Get resolved an absent family")
	}
	if _, ok := snap.GetSeries("levels", "nope"); ok {
		t.Fatal("GetSeries resolved an absent series")
	}
}

// TestConcurrentRegistryWrites hammers every handle kind (and the
// resolution and snapshot paths) from many goroutines — the -race meat
// of the scheduler-stress CI job.
func TestConcurrentRegistryWrites(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", []float64{0.5})
	vec := r.CounterVec("v", "", "who").SetCap(4)
	const goroutines, per = 8, 200
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			who := string(rune('a' + id%6)) // 6 names through a cap of 4: exercises the spill
			for j := 0; j < per; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(j))
				vec.With(who).Inc()
				if j%50 == 0 {
					_ = r.Snapshot()
				}
			}
		}(i)
	}
	wg.Wait()
	snap := r.Snapshot()
	if v, _ := snap.Get("c"); v != goroutines*per {
		t.Fatalf("counter = %v, want %d", v, goroutines*per)
	}
	if v, _ := snap.Get("g"); v != goroutines*per {
		t.Fatalf("gauge = %v, want %d", v, goroutines*per)
	}
	if got := mustHist(t, snap, "h"); got.Count != goroutines*per {
		t.Fatalf("hist count = %d, want %d", got.Count, goroutines*per)
	}
	// Every vec increment is billed somewhere (own series or "other").
	total := 0.0
	for _, f := range snap.Families {
		if f.Name == "v" {
			for _, s := range f.Series {
				total += s.Value
			}
		}
	}
	if total != goroutines*per {
		t.Fatalf("vec total = %v, want %d", total, goroutines*per)
	}
}

// TestSnapshotRenderings pins both expositions byte for byte on a tiny
// deterministic registry.
func TestSnapshotRenderings(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "b help").Add(3)
	r.Gauge("a_depth", "").Set(-2)
	v := r.CounterVec("c_reqs", "c help", "op", "lane")
	v.With("chase", "high").Add(2)
	v.With("decide", "low").Inc()
	h := r.Histogram("d_wait", "d help", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(3)

	snap := r.Snapshot()
	var prom strings.Builder
	if err := snap.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	wantProm := `# TYPE a_depth gauge
a_depth -2
# HELP b_total b help
# TYPE b_total counter
b_total 3
# HELP c_reqs c help
# TYPE c_reqs counter
c_reqs{op="chase",lane="high"} 2
c_reqs{op="decide",lane="low"} 1
# HELP d_wait d help
# TYPE d_wait histogram
d_wait_bucket{le="0.1"} 1
d_wait_bucket{le="1"} 2
d_wait_bucket{le="+Inf"} 3
d_wait_sum 3.55
d_wait_count 3
`
	if prom.String() != wantProm {
		t.Fatalf("prometheus rendering:\n%s\nwant:\n%s", prom.String(), wantProm)
	}

	var js strings.Builder
	if err := snap.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	wantJSON := `{
  "a_depth": -2,
  "b_total": 3,
  "c_reqs": {
    "op=chase,lane=high": 2,
    "op=decide,lane=low": 1
  },
  "d_wait": {"count": 3, "sum": 3.55, "buckets": {"0.1": 1, "1": 2, "+Inf": 3}}
}
`
	if js.String() != wantJSON {
		t.Fatalf("json rendering:\n%s\nwant:\n%s", js.String(), wantJSON)
	}
}

// TestLabelEscaping: label values with quotes, backslashes, and
// newlines render escaped in the Prometheus exposition.
func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("e_total", "", "who").With(`a"b\c` + "\nd").Inc()
	var b strings.Builder
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `e_total{who="a\"b\\c\nd"} 1`
	if !strings.Contains(b.String(), want) {
		t.Fatalf("escaped rendering %q not in:\n%s", want, b.String())
	}
}

// TestCollector: AddCollector functions run at snapshot time, before
// values are copied out.
func TestCollector(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("bridged", "")
	n := int64(0)
	r.AddCollector(func() { n += 10; g.Set(n) })
	if v, _ := r.Snapshot().Get("bridged"); v != 10 {
		t.Fatalf("first snapshot = %v", v)
	}
	if v, _ := r.Snapshot().Get("bridged"); v != 20 {
		t.Fatalf("second snapshot = %v", v)
	}
}

func TestTelemetryEnabled(t *testing.T) {
	var nilTel *Telemetry
	if nilTel.Enabled() {
		t.Fatal("nil telemetry reports enabled")
	}
	if (&Telemetry{}).Enabled() {
		t.Fatal("registry-less telemetry reports enabled")
	}
	if !New().Enabled() {
		t.Fatal("New() telemetry not enabled")
	}
	if Default() == nil || Default() != Default() {
		t.Fatal("Default registry is not process-stable")
	}
}

func TestKindString(t *testing.T) {
	if KindCounter.String() != "counter" || KindGauge.String() != "gauge" || KindHistogram.String() != "histogram" {
		t.Fatal("kind names broken")
	}
}

// TestSetCapFloor: caps below one clamp to one, so a family always has
// room for at least the overflow series.
func TestSetCapFloor(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("tiny", "", "k").SetCap(0)
	v.With("a").Inc()
	v.With("b").Inc()
	snap := r.Snapshot()
	if got, ok := snap.GetSeries("tiny", "a"); !ok || got != 1 {
		t.Fatalf("first series = %v, %v", got, ok)
	}
	if got, ok := snap.GetSeries("tiny", OverflowLabel); !ok || got != 1 {
		t.Fatalf("overflow = %v, %v", got, ok)
	}
}
