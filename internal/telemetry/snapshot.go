package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Snapshot is a point-in-time copy of a registry, deterministically
// ordered: families sorted by name, series by label values. It is the
// single source both renderings — Prometheus text and expvar-style
// JSON — and every -stats block derive from.
type Snapshot struct {
	Families []Family
}

// Family is one metric name's snapshot.
type Family struct {
	Name   string
	Help   string
	Kind   Kind
	Labels []string
	Series []Series
}

// Series is one label combination's value. For counters and gauges
// Value holds the reading; for histograms Hist does.
type Series struct {
	Values []string
	Value  float64
	Hist   *HistValue
}

// HistValue is a histogram series' snapshot. Counts are per-bucket
// (non-cumulative), aligned with Bounds plus one final overflow (+Inf)
// bucket; the renderings cumulate them where their format requires.
type HistValue struct {
	Bounds []float64
	Counts []uint64
	Sum    float64
	Count  uint64
}

// formatFloat renders a value the way both expositions spell numbers.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelPairs renders {k="v",...} (empty string for an unlabeled series).
func labelPairs(labels, values []string) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format (# HELP / # TYPE headers, histogram _bucket series
// with cumulative le counts plus _sum and _count).
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	for _, f := range s.Families {
		if f.Help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.Name, f.Help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.Name, f.Kind)
		for _, sr := range f.Series {
			if f.Kind != KindHistogram {
				fmt.Fprintf(&b, "%s%s %s\n", f.Name, labelPairs(f.Labels, sr.Values), formatFloat(sr.Value))
				continue
			}
			h := sr.Hist
			cum := uint64(0)
			for i, bound := range h.Bounds {
				cum += h.Counts[i]
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.Name,
					labelPairs(append(f.Labels, "le"), append(sr.Values, formatFloat(bound))), cum)
			}
			cum += h.Counts[len(h.Bounds)]
			fmt.Fprintf(&b, "%s_bucket%s %d\n", f.Name,
				labelPairs(append(f.Labels, "le"), append(sr.Values, "+Inf")), cum)
			fmt.Fprintf(&b, "%s_sum%s %s\n", f.Name, labelPairs(f.Labels, sr.Values), formatFloat(h.Sum))
			fmt.Fprintf(&b, "%s_count%s %d\n", f.Name, labelPairs(f.Labels, sr.Values), h.Count)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// jsonString renders s as a JSON string literal.
func jsonString(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

// seriesKey renders a labeled series' JSON object key: "k=v,k2=v2".
func seriesKey(labels, values []string) string {
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l + "=" + values[i]
	}
	return strings.Join(parts, ",")
}

// WriteJSON renders the snapshot as one expvar-style JSON object with
// deterministic key order: unlabeled counters and gauges are plain
// numbers, labeled families are objects keyed "k=v,...", histograms are
// {"count","sum","buckets"} objects with cumulative bucket counts keyed
// by upper bound.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	var b strings.Builder
	b.WriteString("{")
	for fi, f := range s.Families {
		if fi > 0 {
			b.WriteString(",")
		}
		b.WriteString("\n  ")
		b.WriteString(jsonString(f.Name))
		b.WriteString(": ")
		if len(f.Labels) == 0 {
			writeJSONValue(&b, f, f.Series[0], "  ")
			continue
		}
		b.WriteString("{")
		for si, sr := range f.Series {
			if si > 0 {
				b.WriteString(",")
			}
			b.WriteString("\n    ")
			b.WriteString(jsonString(seriesKey(f.Labels, sr.Values)))
			b.WriteString(": ")
			writeJSONValue(&b, f, sr, "    ")
		}
		b.WriteString("\n  }")
	}
	b.WriteString("\n}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func writeJSONValue(b *strings.Builder, f Family, sr Series, indent string) {
	if f.Kind != KindHistogram {
		b.WriteString(formatFloat(sr.Value))
		return
	}
	h := sr.Hist
	fmt.Fprintf(b, `{"count": %d, "sum": %s, "buckets": {`, h.Count, formatFloat(h.Sum))
	cum := uint64(0)
	for i, bound := range h.Bounds {
		cum += h.Counts[i]
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(b, "%s: %d", jsonString(formatFloat(bound)), cum)
	}
	cum += h.Counts[len(h.Bounds)]
	if len(h.Bounds) > 0 {
		b.WriteString(", ")
	}
	fmt.Fprintf(b, `"+Inf": %d}}`, cum)
}

// Get returns the value of the named unlabeled counter or gauge (0,
// false when absent) — the convenience tests and stats blocks use.
func (s *Snapshot) Get(name string) (float64, bool) {
	for _, f := range s.Families {
		if f.Name == name && len(f.Labels) == 0 && len(f.Series) == 1 && f.Kind != KindHistogram {
			return f.Series[0].Value, true
		}
	}
	return 0, false
}

// GetSeries returns the value of the named labeled counter or gauge
// series identified by its values in registration order.
func (s *Snapshot) GetSeries(name string, values ...string) (float64, bool) {
	for _, f := range s.Families {
		if f.Name != name || f.Kind == KindHistogram {
			continue
		}
		for _, sr := range f.Series {
			if equalStrings(sr.Values, values) {
				return sr.Value, true
			}
		}
	}
	return 0, false
}
