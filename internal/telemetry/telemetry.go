// Package telemetry is the observability layer of the serving plane: a
// zero-dependency (stdlib-only) metrics registry plus a per-job trace
// sink, wired through internal/service, internal/runtime,
// internal/compile (via its Stats bridge), internal/chase (via the
// chase.Observer seam), and internal/wire (via the wire.Meter seam).
//
// The paper's central hazard is non-uniform termination: one ontology's
// chase blows up exponentially while its neighbors finish in
// milliseconds. A fleet can only govern that hazard if it can see it,
// per tenant and per ontology — queue depth and queue wait against the
// tenant-fair lanes, rounds and atoms derived per chase, compile-cache
// hits and evictions, wire bytes in and out. This package is that
// surface.
//
// # Metrics
//
// A Registry holds counters, gauges, and fixed-bucket histograms,
// optionally labeled with a small, capped set of label values (tenant,
// priority lane, ontology fingerprint prefix, job kind — low-cardinality
// by construction: once a family holds SeriesCap distinct label sets,
// further label values collapse into one "other" series, so an abusive
// or misconfigured tenant cannot blow up the registry). The hot path is
// allocation-free: callers resolve a *Counter / *Gauge / *Histogram
// handle once (registration and With are the slow path) and then update
// it with plain atomic operations. Registry.Snapshot() returns a
// deterministic, sorted snapshot with two renderings: Prometheus
// exposition text (WritePrometheus) and an expvar-style JSON object
// (WriteJSON).
//
// # Traces
//
// A TraceSink records per-job spans — admission, queue wait, compile,
// sampled chase rounds, result encode — as structured events. WriteTo
// renders them as JSON lines, one event per line, deterministically
// ordered by (job index, sequence) with a fixed key order, so tests can
// pin whole traces byte for byte once the sink's clock is stubbed.
//
// # Disabled path
//
// Everything is opt-in. A nil *Telemetry (or nil Observer / Meter /
// JobTrace) disables the corresponding instrumentation at the cost of
// one nil check on the hot path; BenchmarkTelemetryOverhead and
// BENCH_obs.json pin that the disabled-path allocation profile of the
// serving benches is unchanged.
//
// Handler exposes a registry (plus a health callback) over HTTP —
// GET /healthz, /metrics, /metrics.json — the first piece of the future
// cmd/chased worker's health surface.
package telemetry

// Telemetry bundles the two observability channels a serving layer
// threads through its layers: the metrics registry (always present on a
// live Telemetry) and an optional per-job trace sink. A nil *Telemetry
// disables instrumentation entirely — the conventional "off" value the
// scheduler and service check for.
type Telemetry struct {
	Registry *Registry
	// Trace, when non-nil, receives per-job span events.
	Trace *TraceSink
}

// New returns a live Telemetry with a fresh registry and no trace sink.
func New() *Telemetry { return &Telemetry{Registry: NewRegistry()} }

// Enabled reports whether t carries a usable registry; it is nil-safe
// and is the single gate instrumented layers test.
func (t *Telemetry) Enabled() bool { return t != nil && t.Registry != nil }

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry, for long-lived processes
// (the future cmd/chased worker) that want one shared exposition
// surface. The CLIs build private registries instead, so one-shot runs
// never leak state into each other's -metrics files.
func Default() *Registry { return defaultRegistry }
