package telemetry

import (
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// TraceSink collects per-job span events. One sink serves a whole
// serving plane (scheduler + service); every job records into its own
// JobTrace, and WriteTo renders the union as JSON lines ordered by
// (job index, sequence) — a deterministic order, so a trace of a
// deterministic fleet is pinnable byte for byte once the clock is
// stubbed (SetClock).
type TraceSink struct {
	mu     sync.Mutex
	clock  func() time.Time
	events []TraceEvent
}

// TraceEvent is one recorded span or point event.
type TraceEvent struct {
	Job   string
	Index int
	Seq   int
	Span  string
	// Dur is the span's duration; zero for instantaneous events.
	Dur time.Duration
	// Attrs are ordered key-value pairs (the recording order is part of
	// the deterministic rendering).
	Attrs [][2]string
}

// NewTraceSink returns an empty sink on the real clock.
func NewTraceSink() *TraceSink {
	return &TraceSink{clock: time.Now}
}

// SetClock replaces the sink's clock — the test hook that makes span
// durations (and hence whole trace renderings) deterministic.
func (s *TraceSink) SetClock(fn func() time.Time) {
	s.mu.Lock()
	s.clock = fn
	s.mu.Unlock()
}

// Now reads the sink's clock; nil-safe (zero time when disabled).
func (s *TraceSink) Now() time.Time {
	if s == nil {
		return time.Time{}
	}
	s.mu.Lock()
	fn := s.clock
	s.mu.Unlock()
	return fn()
}

// Job opens the trace of one job, identified by its name and scheduler
// index (the deterministic ordering key across jobs). Nil-safe: a nil
// sink returns a nil trace, whose recording methods no-op — the
// disabled path is one nil check.
func (s *TraceSink) Job(name string, index int) *JobTrace {
	if s == nil {
		return nil
	}
	return &JobTrace{sink: s, job: name, index: index}
}

// record appends one event, assigning the job's next sequence number.
func (s *TraceSink) record(t *JobTrace, span string, dur time.Duration, attrs []string) {
	ev := TraceEvent{Job: t.job, Index: t.index, Span: span, Dur: dur}
	for i := 0; i+1 < len(attrs); i += 2 {
		ev.Attrs = append(ev.Attrs, [2]string{attrs[i], attrs[i+1]})
	}
	s.mu.Lock()
	t.seq++
	ev.Seq = t.seq
	s.events = append(s.events, ev)
	s.mu.Unlock()
}

// Events returns a sorted copy of every recorded event.
func (s *TraceSink) Events() []TraceEvent {
	s.mu.Lock()
	out := append([]TraceEvent(nil), s.events...)
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Index != out[j].Index {
			return out[i].Index < out[j].Index
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// WriteTo renders every event as one JSON line with a fixed key order
// ({"index","job","seq","span","dur_ns","attrs"}), sorted by
// (index, seq).
func (s *TraceSink) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	for _, ev := range s.Events() {
		b.WriteString(`{"index": `)
		b.WriteString(strconv.Itoa(ev.Index))
		b.WriteString(`, "job": `)
		b.WriteString(jsonString(ev.Job))
		b.WriteString(`, "seq": `)
		b.WriteString(strconv.Itoa(ev.Seq))
		b.WriteString(`, "span": `)
		b.WriteString(jsonString(ev.Span))
		b.WriteString(`, "dur_ns": `)
		b.WriteString(strconv.FormatInt(ev.Dur.Nanoseconds(), 10))
		b.WriteString(`, "attrs": {`)
		for i, kv := range ev.Attrs {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(jsonString(kv[0]))
			b.WriteString(": ")
			b.WriteString(jsonString(kv[1]))
		}
		b.WriteString("}}\n")
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// JobTrace records one job's spans. All methods are nil-safe no-ops on
// a nil receiver, so call sites need no enabled-check of their own.
type JobTrace struct {
	sink  *TraceSink
	job   string
	index int
	seq   int
}

// Event records an instantaneous event with ordered attr pairs
// (k1, v1, k2, v2, ...; a trailing odd key is dropped).
func (t *JobTrace) Event(span string, attrs ...string) {
	if t == nil {
		return
	}
	t.sink.record(t, span, 0, attrs)
}

// Span records a completed span of duration d.
func (t *JobTrace) Span(span string, d time.Duration, attrs ...string) {
	if t == nil {
		return
	}
	t.sink.record(t, span, d, attrs)
}

// Now reads the sink's clock; nil-safe.
func (t *JobTrace) Now() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.sink.Now()
}
