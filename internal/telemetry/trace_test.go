package telemetry

import (
	"strings"
	"testing"
	"time"
)

// TestTraceDeterministicRendering pins a whole two-job trace byte for
// byte: events interleave across jobs at record time, yet WriteTo
// orders by (index, seq) with a fixed key order.
func TestTraceDeterministicRendering(t *testing.T) {
	sink := NewTraceSink()
	base := time.Unix(1000, 0)
	sink.SetClock(func() time.Time { return base })
	if !sink.Now().Equal(base) {
		t.Fatal("stubbed clock not in effect")
	}

	j0 := sink.Job("chase", 0)
	j1 := sink.Job("decide", 1)
	j1.Event("admit", "tenant", "acme")
	j0.Event("admit", "tenant", "anon", "lane", "normal")
	j0.Span("queue", 1500*time.Nanosecond, "lane", "normal")
	j1.Span("run", 2*time.Microsecond)
	j0.Event("chase", "rounds", "3")

	events := sink.Events()
	if len(events) != 5 {
		t.Fatalf("events = %d, want 5", len(events))
	}
	for i := 1; i < len(events); i++ {
		a, b := events[i-1], events[i]
		if a.Index > b.Index || (a.Index == b.Index && a.Seq >= b.Seq) {
			t.Fatalf("events out of order at %d: %+v then %+v", i, a, b)
		}
	}

	var b strings.Builder
	if _, err := sink.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	want := `{"index": 0, "job": "chase", "seq": 1, "span": "admit", "dur_ns": 0, "attrs": {"tenant": "anon", "lane": "normal"}}
{"index": 0, "job": "chase", "seq": 2, "span": "queue", "dur_ns": 1500, "attrs": {"lane": "normal"}}
{"index": 0, "job": "chase", "seq": 3, "span": "chase", "dur_ns": 0, "attrs": {"rounds": "3"}}
{"index": 1, "job": "decide", "seq": 1, "span": "admit", "dur_ns": 0, "attrs": {"tenant": "acme"}}
{"index": 1, "job": "decide", "seq": 2, "span": "run", "dur_ns": 2000, "attrs": {}}
`
	if b.String() != want {
		t.Fatalf("trace rendering:\n%s\nwant:\n%s", b.String(), want)
	}
}

// TestTraceNilSafety: a nil sink yields nil traces whose methods no-op,
// so disabled call sites need no guards of their own.
func TestTraceNilSafety(t *testing.T) {
	var sink *TraceSink
	tr := sink.Job("x", 0)
	if tr != nil {
		t.Fatal("nil sink produced a trace")
	}
	tr.Event("e")             // must not panic
	tr.Span("s", time.Second) // must not panic
	if !tr.Now().IsZero() {
		t.Fatal("nil trace clock not zero")
	}
	if !sink.Now().IsZero() {
		t.Fatal("nil sink clock not zero")
	}
}

// TestTraceOddAttrs: a trailing odd key is dropped, not rendered.
func TestTraceOddAttrs(t *testing.T) {
	sink := NewTraceSink()
	sink.Job("j", 0).Event("e", "k1", "v1", "dangling")
	ev := sink.Events()[0]
	if len(ev.Attrs) != 1 || ev.Attrs[0] != [2]string{"k1", "v1"} {
		t.Fatalf("attrs = %v", ev.Attrs)
	}
}
