package tgds

import (
	"sort"
	"strings"

	"repro/internal/logic"
)

// Class identifies the syntactic class of a set of TGDs, from most to
// least restrictive. Classify returns the most restrictive class that
// contains the set.
type Class int

const (
	// ClassSL is the class of sets of simple linear TGDs.
	ClassSL Class = iota
	// ClassL is the class of sets of linear TGDs.
	ClassL
	// ClassG is the class of sets of guarded TGDs.
	ClassG
	// ClassTGD is the class of arbitrary sets of TGDs.
	ClassTGD
)

// String returns the conventional name of the class.
func (c Class) String() string {
	switch c {
	case ClassSL:
		return "SL"
	case ClassL:
		return "L"
	case ClassG:
		return "G"
	default:
		return "TGD"
	}
}

// Set is a finite set of TGDs. The zero value is not usable; construct
// with NewSet. TGDs keep their insertion order and receive sequential IDs;
// duplicates (by canonical key) are dropped.
type Set struct {
	TGDs []*TGD
	keys map[string]bool
}

// NewSet builds a set from the given TGDs, assigning IDs and removing
// duplicates.
func NewSet(tgds ...*TGD) *Set {
	s := &Set{keys: make(map[string]bool)}
	for _, t := range tgds {
		s.Add(t)
	}
	return s
}

// Add inserts the TGD if it is not already present (by canonical key) and
// reports whether it was added. The TGD's ID is set to its index.
func (s *Set) Add(t *TGD) bool {
	if s.keys[t.key] {
		return false
	}
	s.keys[t.key] = true
	t.ID = len(s.TGDs)
	s.TGDs = append(s.TGDs, t)
	return true
}

// Len returns the number of TGDs.
func (s *Set) Len() int { return len(s.TGDs) }

// Classify returns the most restrictive class among SL, L, G, TGD that
// contains the set. The empty set classifies as SL.
func (s *Set) Classify() Class {
	c := ClassSL
	for _, t := range s.TGDs {
		switch {
		case t.IsSimpleLinear():
		case t.IsLinear():
			if c < ClassL {
				c = ClassL
			}
		case t.IsGuarded():
			if c < ClassG {
				c = ClassG
			}
		default:
			return ClassTGD
		}
	}
	return c
}

// Schema returns sch(Σ): the distinct predicates occurring in the set,
// sorted by name then arity.
func (s *Set) Schema() []logic.Predicate {
	seen := make(map[logic.Predicate]bool)
	var out []logic.Predicate
	for _, t := range s.TGDs {
		for _, a := range append(append([]*logic.Atom{}, t.Body...), t.Head...) {
			if !seen[a.Pred] {
				seen[a.Pred] = true
				out = append(out, a.Pred)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Arity < out[j].Arity
	})
	return out
}

// Arity returns ar(Σ): the maximum predicate arity, or 0 for the empty set.
func (s *Set) Arity() int {
	max := 0
	for _, p := range s.Schema() {
		if p.Arity > max {
			max = p.Arity
		}
	}
	return max
}

// AtomCount returns |atoms(Σ)|: the number of distinct atoms occurring in
// the TGDs of the set (atoms are distinct when their renderings differ,
// which matches the paper's convention of TGDs not sharing variables).
func (s *Set) AtomCount() int {
	seen := make(map[string]bool)
	for i, t := range s.TGDs {
		for _, a := range append(append([]*logic.Atom{}, t.Body...), t.Head...) {
			// Atoms of distinct TGDs are distinct by the no-shared-variable
			// convention even if they render identically.
			seen[a.Key()+"#"+string(rune(i))] = true
		}
	}
	return len(seen)
}

// Norm returns the paper's ‖Σ‖ = |atoms(Σ)|·|sch(Σ)|·ar(Σ).
func (s *Set) Norm() int {
	return s.AtomCount() * len(s.Schema()) * s.Arity()
}

// String renders the set one TGD per line.
func (s *Set) String() string {
	parts := make([]string, len(s.TGDs))
	for i, t := range s.TGDs {
		parts[i] = t.String()
	}
	return strings.Join(parts, "\n")
}
