// Package tgds models tuple-generating dependencies (TGDs) and finite sets
// thereof, together with the syntactic classes studied in the paper:
// guarded TGDs (G), linear TGDs (L), and simple linear TGDs (SL), with
// SL ⊊ L ⊊ G. It also computes the paper's size metrics for a set Σ:
// sch(Σ), ar(Σ), atoms(Σ) and ‖Σ‖ = |atoms(Σ)|·|sch(Σ)|·ar(Σ).
package tgds

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/logic"
)

// TGD is a tuple-generating dependency body(x̄,ȳ) → ∃z̄ head(x̄,z̄). Both
// body and head are non-empty conjunctions of atoms. The frontier is the
// set of variables shared between body and head; head variables outside
// the frontier are existentially quantified.
type TGD struct {
	// ID is the index of the TGD within its Set (or -1 when standalone).
	ID   int
	Body []*logic.Atom
	Head []*logic.Atom

	frontier    []logic.Variable
	frontierIDs []int32 // interned ids, aligned with frontier
	existential []logic.Variable
	bodyVars    []logic.Variable // distinct body variables, first-occurrence order
	sortedBody  []logic.Variable // distinct body variables, sorted by name
	sortedIDs   []int32          // interned ids, aligned with sortedBody
	guardIndex  int
	key         string
}

// New constructs and validates a TGD. It returns an error if body or head
// is empty, or if an atom argument is neither a variable nor a constant
// (TGDs over nulls are not meaningful).
func New(body, head []*logic.Atom) (*TGD, error) {
	if len(body) == 0 {
		return nil, errors.New("tgds: empty body")
	}
	if len(head) == 0 {
		return nil, errors.New("tgds: empty head")
	}
	for _, atoms := range [][]*logic.Atom{body, head} {
		for _, a := range atoms {
			for _, t := range a.Args {
				switch t.(type) {
				case logic.Variable, logic.Constant, logic.Fresh:
				default:
					return nil, fmt.Errorf("tgds: illegal term %v in %v", t, a)
				}
			}
		}
	}
	t := &TGD{ID: -1, Body: body, Head: head, guardIndex: -1}
	bodyVars := variableSet(body)
	headVars := variableSet(head)
	for _, v := range variablesInOrder(head) {
		if bodyVars[v] {
			t.frontier = append(t.frontier, v)
		} else {
			t.existential = append(t.existential, v)
		}
	}
	sort.Slice(t.frontier, func(i, j int) bool { return t.frontier[i] < t.frontier[j] })
	_ = headVars
	t.frontierIDs = internVars(t.frontier)
	t.bodyVars = variablesInOrder(body)
	t.sortedBody = append([]logic.Variable{}, t.bodyVars...)
	sort.Slice(t.sortedBody, func(i, j int) bool { return t.sortedBody[i] < t.sortedBody[j] })
	t.sortedIDs = internVars(t.sortedBody)
	// Guard: the leftmost body atom containing every body variable.
	for i, a := range body {
		if containsAll(a, t.bodyVars) {
			t.guardIndex = i
			break
		}
	}
	t.key = renderTGD(body, head)
	return t, nil
}

func internVars(vars []logic.Variable) []int32 {
	out := make([]int32, len(vars))
	for i, v := range vars {
		out[i] = logic.IDOf(v)
	}
	return out
}

// MustNew is New for statically-known TGDs; it panics on error.
func MustNew(body, head []*logic.Atom) *TGD {
	t, err := New(body, head)
	if err != nil {
		panic(err)
	}
	return t
}

// Frontier returns the frontier variables fr(σ), sorted. The returned
// slice is shared; callers must not modify it.
func (t *TGD) Frontier() []logic.Variable { return t.frontier }

// FrontierIDs returns the interned symbol ids of the frontier variables,
// aligned with Frontier(). The returned slice is shared; callers must not
// modify it.
func (t *TGD) FrontierIDs() []int32 { return t.frontierIDs }

// Existential returns the existentially quantified head variables, in
// order of first occurrence in the head.
func (t *TGD) Existential() []logic.Variable { return t.existential }

// BodyVariables returns the distinct body variables in order of first
// occurrence. The result is a fresh copy on every call: the memoized
// slice must not leak, because callers (historically the oblivious chase's
// trigger keying) sort it in place.
func (t *TGD) BodyVariables() []logic.Variable {
	return append([]logic.Variable{}, t.bodyVars...)
}

// SortedBodyVarIDs returns the interned symbol ids of the distinct body
// variables, sorted by variable name; the oblivious chase keys triggers
// and nulls by the images of exactly this sequence. The returned slice is
// shared; callers must not modify it.
func (t *TGD) SortedBodyVarIDs() []int32 { return t.sortedIDs }

// IsGuarded reports whether some body atom contains all body variables.
func (t *TGD) IsGuarded() bool { return t.guardIndex >= 0 }

// Guard returns the guard atom (the leftmost body atom containing all body
// variables) or nil when the TGD is not guarded.
func (t *TGD) Guard() *logic.Atom {
	if t.guardIndex < 0 {
		return nil
	}
	return t.Body[t.guardIndex]
}

// GuardIndex returns the index of the guard atom in the body, or -1.
func (t *TGD) GuardIndex() int { return t.guardIndex }

// IsLinear reports whether the body consists of a single atom.
func (t *TGD) IsLinear() bool { return len(t.Body) == 1 }

// IsSimpleLinear reports whether the TGD is linear and no variable occurs
// more than once in its body atom.
func (t *TGD) IsSimpleLinear() bool {
	if !t.IsLinear() {
		return false
	}
	seen := make(map[logic.Variable]bool)
	for _, term := range t.Body[0].Args {
		if v, ok := term.(logic.Variable); ok {
			if seen[v] {
				return false
			}
			seen[v] = true
		}
	}
	return true
}

// Key returns a canonical rendering of the TGD, used for deduplication.
func (t *TGD) Key() string { return t.key }

// String renders the TGD in rule syntax.
func (t *TGD) String() string { return t.key }

func renderTGD(body, head []*logic.Atom) string {
	parts := make([]string, len(body))
	for i, a := range body {
		parts[i] = a.String()
	}
	s := strings.Join(parts, ", ") + " -> "
	parts = make([]string, len(head))
	for i, a := range head {
		parts[i] = a.String()
	}
	return s + strings.Join(parts, ", ")
}

func variableSet(atoms []*logic.Atom) map[logic.Variable]bool {
	out := make(map[logic.Variable]bool)
	for _, a := range atoms {
		for _, t := range a.Args {
			if v, ok := t.(logic.Variable); ok {
				out[v] = true
			}
		}
	}
	return out
}

func variablesInOrder(atoms []*logic.Atom) []logic.Variable {
	var out []logic.Variable
	seen := make(map[logic.Variable]bool)
	for _, a := range atoms {
		for _, t := range a.Args {
			if v, ok := t.(logic.Variable); ok && !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

func containsAll(a *logic.Atom, vars []logic.Variable) bool {
	have := make(map[logic.Variable]bool, len(a.Args))
	for _, t := range a.Args {
		if v, ok := t.(logic.Variable); ok {
			have[v] = true
		}
	}
	for _, v := range vars {
		if !have[v] {
			return false
		}
	}
	return true
}
