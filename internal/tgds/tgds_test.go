package tgds

import (
	"testing"

	"repro/internal/logic"
)

func atom(name string, args ...logic.Term) *logic.Atom { return logic.MakeAtom(name, args...) }

var (
	x = logic.Variable("X")
	y = logic.Variable("Y")
	z = logic.Variable("Z")
	w = logic.Variable("W")
)

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, []*logic.Atom{atom("R", x)}); err == nil {
		t.Fatal("empty body must be rejected")
	}
	if _, err := New([]*logic.Atom{atom("R", x)}, nil); err == nil {
		t.Fatal("empty head must be rejected")
	}
}

func TestFrontierAndExistential(t *testing.T) {
	// R(x,y) -> ∃z R(y,z), P(x)
	tg := MustNew(
		[]*logic.Atom{atom("R", x, y)},
		[]*logic.Atom{atom("R", y, z), atom("P", x)},
	)
	fr := tg.Frontier()
	if len(fr) != 2 || fr[0] != x || fr[1] != y {
		t.Fatalf("frontier = %v", fr)
	}
	ex := tg.Existential()
	if len(ex) != 1 || ex[0] != z {
		t.Fatalf("existential = %v", ex)
	}
}

func TestClasses(t *testing.T) {
	sl := MustNew([]*logic.Atom{atom("R", x, y)}, []*logic.Atom{atom("R", y, z)})
	if !sl.IsSimpleLinear() || !sl.IsLinear() || !sl.IsGuarded() {
		t.Fatal("R(x,y)->R(y,z) is SL ⊊ L ⊊ G")
	}
	l := MustNew([]*logic.Atom{atom("R", x, x)}, []*logic.Atom{atom("R", z, x)})
	if l.IsSimpleLinear() || !l.IsLinear() {
		t.Fatal("R(x,x)->R(z,x) is linear but not simple")
	}
	g := MustNew(
		[]*logic.Atom{atom("P", x, y, z), atom("S", x, z)},
		[]*logic.Atom{atom("R", y)},
	)
	if g.IsLinear() || !g.IsGuarded() {
		t.Fatal("guarded but not linear")
	}
	if g.Guard().Pred.Name != "P" {
		t.Fatalf("guard = %v", g.Guard())
	}
	ug := MustNew(
		[]*logic.Atom{atom("R", x, y), atom("R", y, z)},
		[]*logic.Atom{atom("R", x, z)},
	)
	if ug.IsGuarded() {
		t.Fatal("transitivity is unguarded")
	}
}

func TestGuardLeftmost(t *testing.T) {
	// Both atoms contain all variables; the leftmost is the guard.
	tg := MustNew(
		[]*logic.Atom{atom("A", x, y), atom("B", y, x)},
		[]*logic.Atom{atom("C", x)},
	)
	if tg.GuardIndex() != 0 {
		t.Fatalf("guard index = %d, want 0 (leftmost)", tg.GuardIndex())
	}
}

func TestSetClassify(t *testing.T) {
	sl := MustNew([]*logic.Atom{atom("R", x, y)}, []*logic.Atom{atom("R", y, z)})
	l := MustNew([]*logic.Atom{atom("R", w, w)}, []*logic.Atom{atom("P", w)})
	g := MustNew([]*logic.Atom{atom("P", x, y, z), atom("S", x, z)}, []*logic.Atom{atom("R", y)})
	u := MustNew([]*logic.Atom{atom("R", x, y), atom("R", y, z)}, []*logic.Atom{atom("R", x, z)})

	if got := NewSet(sl).Classify(); got != ClassSL {
		t.Fatalf("classify SL = %v", got)
	}
	if got := NewSet(sl, l).Classify(); got != ClassL {
		t.Fatalf("classify L = %v", got)
	}
	if got := NewSet(sl, l, g).Classify(); got != ClassG {
		t.Fatalf("classify G = %v", got)
	}
	if got := NewSet(sl, u).Classify(); got != ClassTGD {
		t.Fatalf("classify TGD = %v", got)
	}
}

func TestSetMetrics(t *testing.T) {
	set := NewSet(
		MustNew([]*logic.Atom{atom("R", x, y)}, []*logic.Atom{atom("P", y, z, w)}),
		MustNew([]*logic.Atom{atom("P", x, y, z)}, []*logic.Atom{atom("R", x, y)}),
	)
	sch := set.Schema()
	if len(sch) != 2 {
		t.Fatalf("schema = %v", sch)
	}
	if set.Arity() != 3 {
		t.Fatalf("arity = %d", set.Arity())
	}
	if set.AtomCount() != 4 {
		t.Fatalf("atom count = %d", set.AtomCount())
	}
	if set.Norm() != 4*2*3 {
		t.Fatalf("norm = %d", set.Norm())
	}
}

func TestSetDeduplication(t *testing.T) {
	a := MustNew([]*logic.Atom{atom("R", x, y)}, []*logic.Atom{atom("R", y, z)})
	b := MustNew([]*logic.Atom{atom("R", x, y)}, []*logic.Atom{atom("R", y, z)})
	set := NewSet(a, b)
	if set.Len() != 1 {
		t.Fatalf("duplicate TGDs must be removed, len = %d", set.Len())
	}
}

func TestClassOrder(t *testing.T) {
	if !(ClassSL < ClassL && ClassL < ClassG && ClassG < ClassTGD) {
		t.Fatal("class constants must be ordered SL < L < G < TGD")
	}
	if ClassSL.String() != "SL" || ClassTGD.String() != "TGD" {
		t.Fatal("class names")
	}
}
