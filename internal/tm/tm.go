// Package tm implements deterministic Turing machines and the Appendix A
// reduction of the paper: a database D_M and a fixed (machine-independent)
// TGD set Σ★ such that M halts on the empty input if and only if
// chase(D_M, Σ★) is finite. The reduction strengthens the undecidability
// of ChTrm(TGD) to data complexity (Proposition 4.2).
package tm

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/tgds"
)

// Direction of a head move.
type Direction int

const (
	// Left moves the head one cell left.
	Left Direction = iota
	// Stay keeps the head in place.
	Stay
	// Right moves the head one cell right.
	Right
)

// Tape-alphabet symbols with fixed roles. The begin and end markers and
// the blank are always part of the alphabet.
const (
	Begin = "⊲"
	End   = "⊳"
	Blank = "⊔"
)

type transKey struct {
	state  string
	symbol string
}

// Action is the effect of a transition: next state, written symbol, move.
type Action struct {
	State string
	Write string
	Move  Direction
}

// Machine is a deterministic Turing machine. A missing transition halts
// the machine. Machines are assumed well-behaved: they never move left of
// the begin marker and never overwrite the markers.
type Machine struct {
	Name    string
	Start   string
	states  map[string]bool
	symbols map[string]bool
	trans   map[transKey]Action
}

// New returns a machine with the given name and start state.
func New(name, start string) *Machine {
	m := &Machine{
		Name:    name,
		Start:   start,
		states:  map[string]bool{start: true},
		symbols: map[string]bool{Begin: true, End: true, Blank: true},
		trans:   make(map[transKey]Action),
	}
	return m
}

// Add registers the transition f(state, read) = (next, write, move).
func (m *Machine) Add(state, read, next, write string, move Direction) *Machine {
	m.states[state] = true
	m.states[next] = true
	m.symbols[read] = true
	m.symbols[write] = true
	m.trans[transKey{state, read}] = Action{State: next, Write: write, Move: move}
	return m
}

// Run simulates the machine on the empty input for at most maxSteps steps.
// It returns whether the machine halted and the number of steps taken.
func (m *Machine) Run(maxSteps int) (halted bool, steps int) {
	tape := []string{Begin, Blank, End}
	head := 1
	state := m.Start
	for steps = 0; steps < maxSteps; steps++ {
		act, ok := m.trans[transKey{state, tape[head]}]
		if !ok {
			return true, steps
		}
		tape[head] = act.Write
		state = act.State
		switch act.Move {
		case Left:
			// Moving onto the begin marker is allowed; well-behaved
			// machines define no transition there and halt.
			if head > 0 {
				head--
			}
		case Right:
			head++
			if tape[head] == End {
				// Extend the tape with a blank before the end marker.
				tape = append(tape[:head], append([]string{Blank}, tape[head:]...)...)
			}
		}
	}
	return false, steps
}

// Database builds D_M: the transition table, the initial configuration on
// the empty input, and the auxiliary atoms giving Σ★ access to the
// special constants.
func (m *Machine) Database() *logic.Instance {
	db := logic.NewInstance()
	cst := func(s string) logic.Constant { return logic.Constant(s) }
	dirName := map[Direction]logic.Constant{Left: "dirL", Stay: "dirS", Right: "dirR"}
	for k, a := range m.trans {
		db.Add(logic.MakeAtom("Trans",
			cst("q_"+k.state), cst("s_"+k.symbol),
			cst("q_"+a.State), cst("s_"+a.Write), dirName[a.Move]))
	}
	// Initial configuration ⊲ ⊔ ⊳ with the head on the blank.
	c0, c1, c2, c3 := cst("cell0"), cst("cell1"), cst("cell2"), cst("cell3")
	db.Add(logic.MakeAtom("Tape", c0, cst("s_"+Begin), c1))
	db.Add(logic.MakeAtom("Tape", c1, cst("s_"+Blank), c2))
	db.Add(logic.MakeAtom("Head", c1, cst("q_"+m.Start), c2))
	db.Add(logic.MakeAtom("Tape", c2, cst("s_"+End), c3))
	db.Add(logic.MakeAtom("LDir", dirName[Left]))
	db.Add(logic.MakeAtom("SDir", dirName[Stay]))
	db.Add(logic.MakeAtom("RDir", dirName[Right]))
	db.Add(logic.MakeAtom("Blank", cst("s_"+Blank)))
	db.Add(logic.MakeAtom("End", cst("s_"+End)))
	for s := range m.symbols {
		if s != Begin && s != End {
			db.Add(logic.MakeAtom("NormSymb", cst("s_"+s)))
		}
	}
	return db
}

// FixedSigma returns the machine-independent TGD set Σ★ of Appendix A.
// It simulates the computation of any machine encoded in the database as a
// grid of configurations linked by the "vertical" edge predicates L and R.
func FixedSigma() *tgds.Set {
	vr := func(s string) logic.Variable { return logic.Variable(s) }
	x1, x2, x3, x4, x5 := vr("X1"), vr("X2"), vr("X3"), vr("X4"), vr("X5")
	x, y, z, w, u := vr("X"), vr("Y"), vr("Z"), vr("W"), vr("U")
	xp, yp, zp, wp := vr("Xp"), vr("Yp"), vr("Zp"), vr("Wp")
	a := logic.MakeAtom

	set := tgds.NewSet()
	trans := a("Trans", x1, x2, x3, x4, x5)

	// Right move, head not at the end of the tape.
	set.Add(tgds.MustNew(
		[]*logic.Atom{
			trans, a("RDir", x5), a("NormSymb", w),
			a("Head", x, x1, y), a("Tape", x, x2, y), a("Tape", y, w, z),
		},
		[]*logic.Atom{
			a("L", x, xp), a("R", y, yp), a("R", z, zp),
			a("Tape", xp, x4, yp), a("Head", yp, x3, zp), a("Tape", yp, w, zp),
		},
	))
	// Right move, head at the end of the tape: extend with a blank.
	set.Add(tgds.MustNew(
		[]*logic.Atom{
			trans, a("RDir", x5), a("Blank", u), a("End", w),
			a("Head", x, x1, y), a("Tape", x, x2, y), a("Tape", y, w, z),
		},
		[]*logic.Atom{
			a("L", x, xp), a("R", y, yp), a("R", z, zp),
			a("Tape", xp, x4, yp), a("Head", yp, x3, zp),
			a("Tape", yp, u, zp), a("Tape", zp, w, wp),
		},
	))
	// Left move (machines never read beyond the first cell).
	set.Add(tgds.MustNew(
		[]*logic.Atom{
			trans, a("LDir", x5),
			a("Tape", x, w, y), a("Head", y, x1, z), a("Tape", y, x2, z),
		},
		[]*logic.Atom{
			a("R", x, xp), a("R", y, yp), a("L", z, zp),
			a("Head", xp, x3, yp), a("Tape", xp, w, yp), a("Tape", yp, x4, zp),
		},
	))
	// Stay.
	set.Add(tgds.MustNew(
		[]*logic.Atom{
			trans, a("SDir", x5),
			a("Head", x, x1, y), a("Tape", x, x2, y),
		},
		[]*logic.Atom{
			a("L", x, xp), a("R", y, yp),
			a("Head", xp, x3, yp), a("Tape", xp, x4, yp),
		},
	))
	// Copy the untouched cells to the left and to the right of the head.
	set.Add(tgds.MustNew(
		[]*logic.Atom{a("Tape", x, z, y), a("L", y, yp)},
		[]*logic.Atom{a("L", x, xp), a("Tape", xp, z, yp)},
	))
	set.Add(tgds.MustNew(
		[]*logic.Atom{a("Tape", x, z, y), a("R", x, xp)},
		[]*logic.Atom{a("Tape", xp, z, yp), a("R", y, yp)},
	))
	return set
}

// Sample machines used by examples, tests and experiments.

// HaltImmediately has no transitions: it halts in zero steps.
func HaltImmediately() *Machine { return New("halt-immediately", "q0") }

// WriteAndHalt writes k marks moving right, then halts.
func WriteAndHalt(k int) *Machine {
	m := New(fmt.Sprintf("write-%d-and-halt", k), "q0")
	for i := 0; i < k; i++ {
		m.Add(fmt.Sprintf("q%d", i), Blank, fmt.Sprintf("q%d", i+1), "a", Right)
	}
	return m
}

// BounceAndHalt writes k marks moving right, returns leftwards over them,
// and halts on the begin marker (no transition is defined there).
func BounceAndHalt(k int) *Machine {
	m := WriteAndHalt(k)
	m.Name = fmt.Sprintf("bounce-%d-and-halt", k)
	last := fmt.Sprintf("q%d", k)
	m.Add(last, Blank, "back", Blank, Left)
	m.Add("back", "a", "back", "a", Left)
	return m
}

// LoopForever stays in place rewriting the blank forever.
func LoopForever() *Machine {
	m := New("loop-forever", "q0")
	m.Add("q0", Blank, "q0", Blank, Stay)
	return m
}

// RightForever marches right forever over blanks.
func RightForever() *Machine {
	m := New("right-forever", "q0")
	m.Add("q0", Blank, "q0", Blank, Right)
	return m
}
