package tm

import (
	"testing"

	"repro/internal/chase"
	"repro/internal/logic"
)

func TestDirectSimulation(t *testing.T) {
	if halted, steps := HaltImmediately().Run(100); !halted || steps != 0 {
		t.Fatalf("halt-immediately: halted=%v steps=%d", halted, steps)
	}
	if halted, steps := WriteAndHalt(3).Run(100); !halted || steps != 3 {
		t.Fatalf("write-3: halted=%v steps=%d", halted, steps)
	}
	if halted, _ := BounceAndHalt(2).Run(100); !halted {
		t.Fatal("bounce-2 must halt")
	}
	if halted, _ := LoopForever().Run(100); halted {
		t.Fatal("loop must not halt")
	}
	if halted, _ := RightForever().Run(100); halted {
		t.Fatal("right-forever must not halt")
	}
}

func TestDatabaseEncoding(t *testing.T) {
	db := WriteAndHalt(1).Database()
	if !db.IsDatabase() {
		t.Fatal("encoding must be a database")
	}
	head := logic.Predicate{Name: "Head", Arity: 3}
	if len(db.ByPred(head)) != 1 {
		t.Fatal("initial head atom missing")
	}
	trans := logic.Predicate{Name: "Trans", Arity: 5}
	if len(db.ByPred(trans)) != 1 {
		t.Fatalf("transition table = %v", db.ByPred(trans))
	}
}

func TestFixedSigmaIsMachineIndependent(t *testing.T) {
	s1 := FixedSigma()
	s2 := FixedSigma()
	if s1.String() != s2.String() {
		t.Fatal("Σ★ must be deterministic")
	}
	if s1.Len() != 6 {
		t.Fatalf("Σ★ has %d TGDs, want 6", s1.Len())
	}
	// Σ★ must be constant-free: the reduction keeps all machine-specific
	// information in the database.
	for _, tgd := range s1.TGDs {
		for _, atoms := range [][]*logic.Atom{tgd.Body, tgd.Head} {
			for _, a := range atoms {
				for _, term := range a.Args {
					if _, ok := term.(logic.Constant); ok {
						t.Fatalf("Σ★ mentions constant in %v", tgd)
					}
				}
			}
		}
	}
}

// The Appendix A equivalence, in its executable form: for halting
// machines the chase of D_M with Σ★ terminates; for looping machines it
// exceeds any budget.
func TestReductionHaltingDirection(t *testing.T) {
	sigma := FixedSigma()
	for _, m := range []*Machine{HaltImmediately(), WriteAndHalt(1), WriteAndHalt(2), BounceAndHalt(2)} {
		res := chase.Run(m.Database(), sigma, chase.Options{MaxAtoms: 300000})
		if !res.Terminated {
			t.Fatalf("machine %s halts but chase exceeded budget (%d atoms)", m.Name, res.Instance.Len())
		}
	}
}

func TestReductionLoopingDirection(t *testing.T) {
	sigma := FixedSigma()
	for _, m := range []*Machine{LoopForever(), RightForever()} {
		res := chase.Run(m.Database(), sigma, chase.Options{MaxAtoms: 20000})
		if res.Terminated {
			t.Fatalf("machine %s loops but chase terminated with %d atoms", m.Name, res.Instance.Len())
		}
	}
}

// Longer computations produce larger chases: the reduction tracks the
// machine's work tape.
func TestReductionScalesWithComputation(t *testing.T) {
	sigma := FixedSigma()
	r1 := chase.Run(WriteAndHalt(1).Database(), sigma, chase.Options{MaxAtoms: 500000})
	r2 := chase.Run(WriteAndHalt(3).Database(), sigma, chase.Options{MaxAtoms: 500000})
	if !r1.Terminated || !r2.Terminated {
		t.Fatal("both machines halt")
	}
	if r2.Instance.Len() <= r1.Instance.Len() {
		t.Fatalf("longer computation must yield a larger chase: %d vs %d",
			r1.Instance.Len(), r2.Instance.Len())
	}
}
