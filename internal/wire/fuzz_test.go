package wire

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/logic"
)

// FuzzWireRoundTrip pins the codec's two core properties on arbitrary
// input. Any byte string either fails to decode with a typed error
// (ErrCorrupt wrapping the defect — never a panic), or decodes to an
// instance for which encode→decode→encode is a byte-level fixpoint and
// decoding preserves CanonicalKey — the cross-process identity the
// service layer's byte-identical-fleet guarantee rests on. (A hostile
// encoding may list one atom twice, which instance deduplication
// collapses, so the fixpoint is asserted from the first re-encode on,
// the codec's canonical form.)
func FuzzWireRoundTrip(f *testing.F) {
	f.Add(EncodeSnapshot(logic.NewInstance()))
	f.Add(EncodeSnapshot(logic.NewDatabase(
		logic.MakeAtom("p", logic.Constant("a"), logic.Constant("b")),
		logic.MakeAtom("q", logic.Constant("b")),
	)))
	nulls := logic.NewNullFactory()
	n0, _ := nulls.Intern("x", 1)
	n1, _ := nulls.Intern("y", 2)
	f.Add(EncodeSnapshot(logic.NewDatabase(
		logic.MakeAtom("r", n0, n1),
		logic.MakeAtom("r", n1, logic.Fresh(3)),
		logic.MakeAtom("zero"),
	)))
	f.Fuzz(func(t *testing.T, data []byte) {
		in, err := DecodeSnapshot(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrDeltaMismatch) {
				t.Fatalf("decode failed with an untyped error: %v", err)
			}
			return
		}
		canonical := EncodeSnapshot(in)
		again, err := DecodeSnapshot(canonical)
		if err != nil {
			t.Fatalf("re-decode of a self-produced encoding failed: %v", err)
		}
		if again.CanonicalKey() != in.CanonicalKey() {
			t.Fatalf("CanonicalKey not preserved:\n%s\nvs\n%s", again.CanonicalKey(), in.CanonicalKey())
		}
		if fixed := EncodeSnapshot(again); !bytes.Equal(fixed, canonical) {
			t.Fatalf("encode∘decode is not a fixpoint on canonical encodings (%d vs %d bytes)", len(fixed), len(canonical))
		}
	})
}
