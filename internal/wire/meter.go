package wire

import (
	"sync"
	"sync/atomic"
)

// Meter is the codec's observability seam: a listener that sees the
// byte size of every snapshot/delta encode and decode. The codec stays
// telemetry-agnostic — the interface is defined here so this package
// imports nothing, and internal/service installs an adapter that feeds
// wire_encode_bytes / wire_decode_bytes in its telemetry registry.
// Implementations must be safe for concurrent use; metering observes
// sizes only and never alters the encoding (the fuzz-pinned byte
// identity of the codec is unaffected).
type Meter interface {
	// WireEncoded observes one finished encode of n bytes.
	WireEncoded(n int)
	// WireDecoded observes one successfully decoded section of n bytes.
	WireDecoded(n int)
}

// registration wraps an installed Meter so removal works by identity of
// the registration itself, never by comparing Meter values (whose
// dynamic types need not be comparable).
type registration struct{ m Meter }

// meters holds the installed registrations behind one atomic pointer:
// the disabled path stays a single load and nil check per codec call,
// and readers never take meterMu. meterMu serializes mutations only;
// every mutation installs a fresh slice (copy-on-write), so a
// concurrent encode iterating the previous slice is undisturbed.
var (
	meterMu sync.Mutex
	meters  atomic.Pointer[[]*registration]
)

// RegisterMeter installs a codec meter alongside any already installed
// and returns a release function removing exactly this registration,
// idempotently. Every registered meter observes every encode/decode
// until its release runs: two Services metering into separate telemetry
// registries each see the full codec traffic, and closing one — in any
// order — never disturbs the other's accounting. A nil meter registers
// nothing and returns a no-op release.
func RegisterMeter(m Meter) (release func()) {
	if m == nil {
		return func() {}
	}
	reg := &registration{m: m}
	meterMu.Lock()
	defer meterMu.Unlock()
	var cur []*registration
	if p := meters.Load(); p != nil {
		cur = *p
	}
	next := make([]*registration, 0, len(cur)+1)
	next = append(next, cur...)
	next = append(next, reg)
	meters.Store(&next)
	var once sync.Once
	return func() {
		once.Do(func() {
			meterMu.Lock()
			defer meterMu.Unlock()
			cur := *meters.Load()
			next := make([]*registration, 0, len(cur))
			for _, r := range cur {
				if r != reg {
					next = append(next, r)
				}
			}
			if len(next) == 0 {
				meters.Store(nil)
				return
			}
			meters.Store(&next)
		})
	}
}

// meterEncoded fans one finished encode of n bytes out to every
// registered meter.
func meterEncoded(n int) {
	if p := meters.Load(); p != nil {
		for _, r := range *p {
			r.m.WireEncoded(n)
		}
	}
}

// meterDecoded fans one successfully decoded section of n bytes out to
// every registered meter.
func meterDecoded(n int) {
	if p := meters.Load(); p != nil {
		for _, r := range *p {
			r.m.WireDecoded(n)
		}
	}
}
