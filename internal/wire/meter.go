package wire

import "sync/atomic"

// Meter is the codec's observability seam: a process-wide listener that
// sees the byte size of every snapshot/delta encode and decode. The
// codec stays telemetry-agnostic — the interface is defined here so
// this package imports nothing, and internal/service installs an
// adapter that feeds wire_encode_bytes / wire_decode_bytes in its
// telemetry registry. Implementations must be safe for concurrent use;
// metering observes sizes only and never alters the encoding (the
// fuzz-pinned byte identity of the codec is unaffected).
type Meter interface {
	// WireEncoded observes one finished encode of n bytes.
	WireEncoded(n int)
	// WireDecoded observes one successfully decoded section of n bytes.
	WireDecoded(n int)
}

// meter holds the installed Meter; the disabled path is one atomic load
// and a nil check per codec call.
var meter atomic.Pointer[Meter]

// SetMeter installs (or, with nil, removes) the process-wide codec
// meter and returns the previous one, so a caller owning a scoped
// registry can restore its predecessor. Last install wins when several
// serving layers race; the scheduler/service wiring installs at most
// one per process in practice.
func SetMeter(m Meter) (prev Meter) {
	var p *Meter
	if m != nil {
		p = &m
	}
	if old := meter.Swap(p); old != nil {
		prev = *old
	}
	return prev
}

// metered reports the installed meter, nil when metering is off.
func metered() Meter {
	if p := meter.Load(); p != nil {
		return *p
	}
	return nil
}
