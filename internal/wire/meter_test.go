package wire

import (
	"sync"
	"testing"

	"repro/internal/logic"
	"repro/internal/parser"
)

// meterInstance parses a one-atom database to encode under metering.
func meterInstance(t *testing.T) *logic.Instance {
	t.Helper()
	prog, err := parser.Parse("p(a).")
	if err != nil {
		t.Fatal(err)
	}
	return prog.Database
}

// countMeter tallies observed bytes; safe for concurrent use.
type countMeter struct {
	mu                 sync.Mutex
	encoded, decoded   int
	encodes, decodedOK int
}

func (c *countMeter) WireEncoded(n int) {
	c.mu.Lock()
	c.encoded += n
	c.encodes++
	c.mu.Unlock()
}

func (c *countMeter) WireDecoded(n int) {
	c.mu.Lock()
	c.decoded += n
	c.decodedOK++
	c.mu.Unlock()
}

func (c *countMeter) totals() (enc, dec int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.encoded, c.decoded
}

// Two registered meters both observe every encode and decode, and
// releasing either one — in either order — leaves the other's
// accounting undisturbed. This is the regression for the process-global
// SetMeter design, where the second Service's install stomped the
// first's and a Close ordering inversion restored a stale meter.
func TestRegisterMeterConcurrentServices(t *testing.T) {
	in := meterInstance(t)

	a, b := &countMeter{}, &countMeter{}
	releaseA := RegisterMeter(a)
	releaseB := RegisterMeter(b)

	snap := EncodeSnapshot(in)
	if _, err := DecodeSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	aEnc, aDec := a.totals()
	bEnc, bDec := b.totals()
	if aEnc != len(snap) || bEnc != len(snap) {
		t.Fatalf("encode billing: a=%d b=%d, want both %d", aEnc, bEnc, len(snap))
	}
	if aDec != len(snap) || bDec != len(snap) {
		t.Fatalf("decode billing: a=%d b=%d, want both %d", aDec, bDec, len(snap))
	}

	// Release the FIRST registration (the inversion that used to restore
	// a stale meter): B must keep observing, A must stop.
	releaseA()
	snap2 := EncodeSnapshot(in)
	if aEnc2, _ := a.totals(); aEnc2 != aEnc {
		t.Fatalf("released meter still billed: %d -> %d", aEnc, aEnc2)
	}
	if bEnc2, _ := b.totals(); bEnc2 != bEnc+len(snap2) {
		t.Fatalf("surviving meter missed an encode: %d, want %d", bEnc2, bEnc+len(snap2))
	}

	// Double release is a no-op; releasing the last meter turns metering
	// off entirely.
	releaseA()
	releaseB()
	_ = EncodeSnapshot(in)
	if bEnc3, _ := b.totals(); bEnc3 != bEnc+len(snap2) {
		t.Fatalf("released meter still billed: %d", bEnc3)
	}
	if meters.Load() != nil {
		t.Fatal("meter registry not empty after all releases")
	}

	// A nil registration is inert.
	RegisterMeter(nil)()
	if meters.Load() != nil {
		t.Fatal("nil RegisterMeter left a registration behind")
	}
}

// Registration and release are safe against concurrent codec traffic
// (the copy-on-write contract); run with -race.
func TestRegisterMeterRace(t *testing.T) {
	in := meterInstance(t)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = EncodeSnapshot(in)
			}
		}
	}()
	for i := 0; i < 50; i++ {
		release := RegisterMeter(&countMeter{})
		release()
	}
	close(stop)
	wg.Wait()
	if meters.Load() != nil {
		t.Fatal("meter registry not empty after churn")
	}
}
