// Package wire is the portable binary codec for instances: snapshots of a
// whole atom set and per-round deltas (the atoms appended since a known
// prefix), encoded so that a fresh process — with its own empty symbol
// table — decodes an instance that is byte-identical to the original
// under every cross-process identity the system has: CanonicalKey,
// insertion order (and hence semi-naive delta behavior and Seq), and null
// depths. It is the database half of the ROADMAP's distributed-sharding
// wire format; the ontology half is internal/compile's canonical
// fingerprint, and internal/service composes the two into
// fingerprint-addressed job submission.
//
// # Identity and the symbol manifest
//
// The process-local data plane addresses terms and predicates by dense
// int32 ids handed out in interning order, so ids are meaningless outside
// the process that assigned them. An encoding therefore never contains a
// symbol-table id. Instead, every snapshot and delta carries a symbol
// manifest — the distinct predicates and terms of its atoms, listed in
// order of first occurrence in the encoded atom sequence — and the atom
// section refers to symbols by manifest index. Terms appear in the
// manifest under their portable identity: constants and fresh terms by
// value, nulls by (factory id, depth) — the factory-local id is exactly
// what Term.Key and hence Instance.CanonicalKey expose — and foreign term
// kinds by their Key and rendering, carried opaquely. First-occurrence
// order makes the encoding a pure function of the instance's ordered atom
// sequence: two equal instances encode byte-identically no matter which
// process, symbol table, or null factory produced them, and
// encode→decode→encode is a fixpoint (FuzzWireRoundTrip pins both down).
//
// # Deltas
//
// A delta is a snapshot of a suffix: the atoms with insertion sequence >=
// some base length, plus that base length in the header. Deltas are
// self-contained (their manifest re-lists every symbol they touch), but
// null identity must be resolved against the nulls of the base snapshot
// and earlier deltas, so decoding a snapshot+delta stream goes through
// one Decoder, which owns the stream's NullFactory. Applying a delta
// whose base length does not match the decoded instance fails with
// ErrDeltaMismatch rather than silently misaligning the rounds.
//
// # Wire format
//
// All integers are unsigned varints (encoding/binary), except fresh-term
// values, which are zigzag-signed; strings are length-prefixed. Layout:
//
//	magic "CW", kind byte ('S' snapshot, 'D' delta), version varint (1)
//	delta only: base varint (required instance length before applying)
//	predicate count; per predicate: name, arity
//	term count; per term: tag byte + payload
//	    'c' constant: value
//	    'f' fresh:    zigzag varint
//	    'n' null:     factory id varint, depth varint
//	    'v' variable: name (instances are normally ground; totality)
//	    'o' foreign:  identity key, rendering
//	atom count; per atom: predicate index, then arity term indexes
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/logic"
)

// Version is the codec version this package encodes (and the only one it
// decodes).
const Version = 1

var (
	// ErrCorrupt reports an encoding this package cannot decode: bad
	// magic, unknown version, truncated sections, out-of-range indexes,
	// or a manifest record that violates the codec's invariants. It wraps
	// the specific defect.
	ErrCorrupt = errors.New("wire: corrupt encoding")
	// ErrDeltaMismatch reports a delta whose recorded base length does
	// not match the instance it is being applied to.
	ErrDeltaMismatch = errors.New("wire: delta base does not match the decoded instance")
)

const (
	kindSnapshot = 'S'
	kindDelta    = 'D'
)

// opaque carries a foreign term kind across the wire: a term defined
// outside internal/logic survives encoding as its identity key plus its
// rendering, which is all the data plane ever derives from it. Decoded
// opaque terms intern through the symbol table's foreign-key path, so
// they compare equal (by id and by Key) to the original term kind.
type opaque struct{ key, str string }

// Key implements logic.Term.
func (o opaque) Key() string { return o.key }

func (o opaque) String() string { return o.str }

// ForeignTerm reconstructs a foreign term kind from its wire identity —
// the (key, rendering) pair an encoder emits under the 'o' tag. It
// rejects keys in the built-in kinds' key spaces for the same reason the
// decoder does: interning them as foreign would mint a second symbol id
// for an existing identity. internal/checkpoint uses it to decode the
// fired-trigger term manifest, which mirrors this package's tags.
func ForeignTerm(key, rendering string) (logic.Term, error) {
	if builtinKeyPrefix(key) {
		return nil, fmt.Errorf("%w: foreign term with built-in identity key %q", ErrCorrupt, key)
	}
	return opaque{key: key, str: rendering}, nil
}

// builtinKeyPrefix reports whether the key belongs to one of logic's
// built-in term kinds. Encoders never emit such keys under the foreign
// tag; decoders reject them, because interning them as foreign would
// create a second symbol id for an existing identity key.
func builtinKeyPrefix(key string) bool {
	if len(key) < 2 || key[1] != 0 {
		return false
	}
	switch key[0] {
	case 'c', 'n', 'v', 'f':
		return true
	}
	return false
}

// EncodeSnapshot encodes the full instance. The result is a pure function
// of the instance's ordered atom sequence (no process-local state leaks
// in), so equal instances encode byte-identically across processes.
func EncodeSnapshot(in *logic.Instance) []byte {
	e := &encoder{buf: make([]byte, 0, 64+16*in.Len())}
	e.header(kindSnapshot)
	e.atoms(in.Atoms())
	meterEncoded(len(e.buf))
	return e.buf
}

// EncodeDelta encodes the atoms with insertion sequence >= from — one
// semi-naive round's delta when from is the previous round's instance
// length — against a base of length from.
func EncodeDelta(in *logic.Instance, from int) []byte {
	if from < 0 {
		from = 0
	}
	all := in.Atoms()
	if from > len(all) {
		from = len(all)
	}
	e := &encoder{buf: make([]byte, 0, 64+16*(len(all)-from))}
	e.header(kindDelta)
	e.uint(uint64(from))
	e.atoms(all[from:])
	meterEncoded(len(e.buf))
	return e.buf
}

type encoder struct {
	buf []byte
}

func (e *encoder) header(kind byte) {
	e.buf = append(e.buf, 'C', 'W', kind)
	e.uint(Version)
}

func (e *encoder) uint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

func (e *encoder) str(s string) {
	e.uint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// atoms writes the symbol manifest (first-occurrence order) followed by
// the atom section.
func (e *encoder) atoms(atoms []*logic.Atom) {
	var (
		preds     []logic.Predicate
		predIdx   = make(map[logic.Predicate]int)
		terms     []logic.Term
		termIdx   = make(map[int32]int) // interned id -> manifest index
		atomPreds = make([]int, len(atoms))
		atomTerms = make([][]int, len(atoms))
	)
	for ai, a := range atoms {
		pi, ok := predIdx[a.Pred]
		if !ok {
			pi = len(preds)
			predIdx[a.Pred] = pi
			preds = append(preds, a.Pred)
		}
		atomPreds[ai] = pi
		idx := make([]int, len(a.Args))
		for i := range a.Args {
			id := a.ArgID(i)
			ti, ok := termIdx[id]
			if !ok {
				ti = len(terms)
				termIdx[id] = ti
				terms = append(terms, a.Args[i])
			}
			idx[i] = ti
		}
		atomTerms[ai] = idx
	}
	e.uint(uint64(len(preds)))
	for _, p := range preds {
		e.str(p.Name)
		e.uint(uint64(p.Arity))
	}
	e.uint(uint64(len(terms)))
	for _, t := range terms {
		switch x := t.(type) {
		case logic.Constant:
			e.buf = append(e.buf, 'c')
			e.str(string(x))
		case logic.Fresh:
			e.buf = append(e.buf, 'f')
			e.buf = binary.AppendVarint(e.buf, int64(x))
		case *logic.Null:
			e.buf = append(e.buf, 'n')
			e.uint(uint64(x.ID()))
			e.uint(uint64(x.Depth()))
		case logic.Variable:
			// Instances are normally ground, but the codec is total: a
			// variable must not fall into the foreign branch, whose
			// built-in "v\x00" key the decoder categorically rejects.
			e.buf = append(e.buf, 'v')
			e.str(string(x))
		default:
			e.buf = append(e.buf, 'o')
			e.str(t.Key())
			e.str(t.String())
		}
	}
	e.uint(uint64(len(atoms)))
	for ai := range atoms {
		e.uint(uint64(atomPreds[ai]))
		for _, ti := range atomTerms[ai] {
			e.uint(uint64(ti))
		}
	}
}

// Decoder decodes one snapshot and any number of subsequent deltas into a
// single instance, resolving null identity across the whole stream
// through one factory. A Decoder is single-use and not safe for
// concurrent use.
//
// A decode error poisons the decoder: every later Snapshot or Apply call
// fails with an error wrapping both ErrCorrupt and the original defect,
// and Err reports it. Section decoding is atomic (parse-then-materialize,
// see section), so the already-decoded instance is still exactly the
// pre-error stream prefix — Instance remains valid for reading — but the
// stream itself is unusable: a caller that fed one corrupt frame has lost
// sync, and silently accepting the next frame would splice rounds across
// the gap. Checkpoint loading composes snapshot + delta + trigger
// sections on one decoder and relies on this latch.
type Decoder struct {
	nulls *logic.NullFactory
	inst  *logic.Instance
	err   error // first decode error; poisons all later calls
}

// NewDecoder returns a decoder for one snapshot+deltas stream.
func NewDecoder() *Decoder {
	return &Decoder{nulls: logic.NewNullFactory()}
}

// Instance returns the instance decoded so far (nil before Snapshot).
func (d *Decoder) Instance() *logic.Instance { return d.inst }

// Err returns the error that poisoned the decoder, or nil while the
// stream is still healthy.
func (d *Decoder) Err() error { return d.err }

// poison latches the stream's first decode error and returns it. Misuse
// errors (snapshot-after-snapshot, delta-before-snapshot, mismatched
// delta base) poison too: each means the caller's framing is out of step
// with the stream, after which no later frame can be trusted to land
// where the caller thinks it does.
func (d *Decoder) poison(err error) error {
	if d.err == nil {
		d.err = err
	}
	return err
}

// poisoned reports the standing error of a dead stream, wrapping
// ErrCorrupt so callers matching the usual decode-failure sentinel catch
// it without knowing about the latch.
func (d *Decoder) poisoned() error {
	return fmt.Errorf("%w: decoder poisoned by earlier error: %w", ErrCorrupt, d.err)
}

// Snapshot decodes a snapshot encoding into a fresh instance. It must be
// the stream's first call and may be made only once.
func (d *Decoder) Snapshot(data []byte) (*logic.Instance, error) {
	if d.err != nil {
		return nil, d.poisoned()
	}
	if d.inst != nil {
		return nil, d.poison(fmt.Errorf("%w: decoder already holds a snapshot", ErrCorrupt))
	}
	r := &reader{data: data}
	if err := r.header(kindSnapshot); err != nil {
		return nil, d.poison(err)
	}
	in := logic.NewInstance()
	if err := d.section(r, in); err != nil {
		return nil, d.poison(err)
	}
	meterDecoded(len(data))
	d.inst = in
	return in, nil
}

// Apply decodes a delta encoding and appends its atoms to the decoded
// instance, returning the number of atoms added. The delta's recorded
// base length must equal the instance's current length.
//
// An error poisons the decoder (see Decoder): the instance keeps the
// atoms of every frame that succeeded, nothing from the failed one, and
// all later Snapshot/Apply calls refuse with an error wrapping
// ErrCorrupt and the original defect.
func (d *Decoder) Apply(data []byte) (int, error) {
	if d.err != nil {
		return 0, d.poisoned()
	}
	if d.inst == nil {
		return 0, d.poison(fmt.Errorf("%w: delta applied before any snapshot", ErrCorrupt))
	}
	r := &reader{data: data}
	if err := r.header(kindDelta); err != nil {
		return 0, d.poison(err)
	}
	base, err := r.count("delta base")
	if err != nil {
		return 0, d.poison(err)
	}
	if base != d.inst.Len() {
		return 0, d.poison(fmt.Errorf("%w: delta base %d, instance holds %d atoms", ErrDeltaMismatch, base, d.inst.Len()))
	}
	before := d.inst.Len()
	if err := d.section(r, d.inst); err != nil {
		return 0, d.poison(err)
	}
	meterDecoded(len(data))
	return d.inst.Len() - before, nil
}

// DecodeSnapshot decodes a self-contained snapshot with a private
// decoder; use a Decoder directly when deltas will follow.
func DecodeSnapshot(data []byte) (*logic.Instance, error) {
	return NewDecoder().Snapshot(data)
}

// termRec is one parsed (not yet materialized) manifest term record.
type termRec struct {
	tag       byte
	str, str2 string
	a, b      int
}

// section decodes one manifest+atoms section into in. Decoding is
// parse-then-materialize: the whole encoding is parsed and validated —
// index ranges, tags, trailing bytes — before a single null is interned
// or atom added, so corrupt input leaves both the stream's instance and
// its null factory exactly as they were (Apply's atomicity rests on
// this).
func (d *Decoder) section(r *reader, in *logic.Instance) error {
	npreds, err := r.records("predicate count")
	if err != nil {
		return err
	}
	preds := make([]logic.Predicate, npreds)
	for i := range preds {
		name, err := r.str("predicate name")
		if err != nil {
			return err
		}
		arity, err := r.count("predicate arity")
		if err != nil {
			return err
		}
		preds[i] = logic.Predicate{Name: name, Arity: arity}
	}
	nterms, err := r.records("term count")
	if err != nil {
		return err
	}
	recs := make([]termRec, nterms)
	for i := range recs {
		tag, err := r.byte("term tag")
		if err != nil {
			return err
		}
		rec := termRec{tag: tag}
		switch tag {
		case 'c':
			if rec.str, err = r.str("constant"); err != nil {
				return err
			}
		case 'f':
			if rec.a, err = r.int("fresh value"); err != nil {
				return err
			}
		case 'n':
			if rec.a, err = r.count("null id"); err != nil {
				return err
			}
			if rec.b, err = r.count("null depth"); err != nil {
				return err
			}
		case 'v':
			if rec.str, err = r.str("variable"); err != nil {
				return err
			}
		case 'o':
			if rec.str, err = r.str("foreign key"); err != nil {
				return err
			}
			if rec.str2, err = r.str("foreign rendering"); err != nil {
				return err
			}
			if builtinKeyPrefix(rec.str) {
				return fmt.Errorf("%w: foreign term with built-in identity key %q", ErrCorrupt, rec.str)
			}
		default:
			return fmt.Errorf("%w: unknown term tag %q", ErrCorrupt, tag)
		}
		recs[i] = rec
	}
	natoms, err := r.records("atom count")
	if err != nil {
		return err
	}
	atomPreds := make([]int, natoms)
	atomArgs := make([][]int, natoms)
	for ai := 0; ai < natoms; ai++ {
		pi, err := r.count("atom predicate index")
		if err != nil {
			return err
		}
		if pi >= len(preds) {
			return fmt.Errorf("%w: atom %d references predicate %d of %d", ErrCorrupt, ai, pi, len(preds))
		}
		p := preds[pi]
		if p.Arity > len(r.data)-r.pos {
			// Every argument costs at least one byte; reject before the
			// argument slice is even allocated.
			return fmt.Errorf("%w: truncated atom %d", ErrCorrupt, ai)
		}
		idx := make([]int, p.Arity)
		for i := range idx {
			ti, err := r.count("atom term index")
			if err != nil {
				return err
			}
			if ti >= len(recs) {
				return fmt.Errorf("%w: atom %d references term %d of %d", ErrCorrupt, ai, ti, len(recs))
			}
			idx[i] = ti
		}
		atomPreds[ai] = pi
		atomArgs[ai] = idx
	}
	if r.pos != len(r.data) {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(r.data)-r.pos)
	}
	// Fully validated: materialize. Nothing below can fail.
	terms := make([]logic.Term, len(recs))
	for i, rec := range recs {
		switch rec.tag {
		case 'c':
			terms[i] = logic.Constant(rec.str)
		case 'f':
			terms[i] = logic.Fresh(rec.a)
		case 'n':
			terms[i] = d.nulls.NullAt(rec.a, rec.b)
		case 'v':
			terms[i] = logic.Variable(rec.str)
		default:
			terms[i] = opaque{key: rec.str, str: rec.str2}
		}
	}
	for ai := range atomPreds {
		args := make([]logic.Term, len(atomArgs[ai]))
		for i, ti := range atomArgs[ai] {
			args[i] = terms[ti]
		}
		in.Add(logic.NewAtom(preds[atomPreds[ai]], args...))
	}
	return nil
}

// reader is a bounds-checked cursor over one encoding.
type reader struct {
	data []byte
	pos  int
}

func (r *reader) header(kind byte) error {
	if len(r.data) < 3 || r.data[0] != 'C' || r.data[1] != 'W' {
		return fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if r.data[2] != kind {
		return fmt.Errorf("%w: kind %q, want %q", ErrCorrupt, r.data[2], kind)
	}
	r.pos = 3
	v, err := r.count("version")
	if err != nil {
		return err
	}
	if v != Version {
		return fmt.Errorf("%w: version %d, want %d", ErrCorrupt, v, Version)
	}
	return nil
}

func (r *reader) byte(what string) (byte, error) {
	if r.pos >= len(r.data) {
		return 0, fmt.Errorf("%w: truncated %s", ErrCorrupt, what)
	}
	b := r.data[r.pos]
	r.pos++
	return b, nil
}

// count reads an unsigned varint constrained to a sane int range; every
// count, index, and id in the format goes through it, which bounds what
// hostile input can make the decoder allocate.
func (r *reader) count(what string) (int, error) {
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 || v > math.MaxInt32 {
		return 0, fmt.Errorf("%w: bad %s varint", ErrCorrupt, what)
	}
	r.pos += n
	return int(v), nil
}

// records is count for section sizes: every record costs at least one
// byte, so a count larger than the remaining input is corrupt — rejected
// here, before any count-sized allocation happens.
func (r *reader) records(what string) (int, error) {
	n, err := r.count(what)
	if err != nil {
		return 0, err
	}
	if n > len(r.data)-r.pos {
		return 0, fmt.Errorf("%w: %s %d exceeds remaining input", ErrCorrupt, what, n)
	}
	return n, nil
}

func (r *reader) int(what string) (int, error) {
	v, n := binary.Varint(r.data[r.pos:])
	if n <= 0 || v > math.MaxInt32 || v < math.MinInt32 {
		return 0, fmt.Errorf("%w: bad %s varint", ErrCorrupt, what)
	}
	r.pos += n
	return int(v), nil
}

func (r *reader) str(what string) (string, error) {
	n, err := r.count(what + " length")
	if err != nil {
		return "", err
	}
	if r.pos+n > len(r.data) {
		return "", fmt.Errorf("%w: truncated %s", ErrCorrupt, what)
	}
	s := string(r.data[r.pos : r.pos+n])
	r.pos += n
	return s, nil
}
