package wire

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/chase"
	"repro/internal/logic"
	"repro/internal/parser"
)

// scenarios loads every example program under examples/dlgp.
func scenarios(t *testing.T) map[string]*parser.Program {
	t.Helper()
	dir := filepath.Join("..", "..", "examples", "dlgp")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]*parser.Program)
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".dlgp") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		prog, err := parser.Parse(string(src))
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		out[strings.TrimSuffix(e.Name(), ".dlgp")] = prog
	}
	if len(out) == 0 {
		t.Fatal("no example scenarios found")
	}
	return out
}

// sameInstance asserts the two instances are identical under every
// cross-process identity: canonical key, length, and insertion order of
// atom keys (which is what Seq and semi-naive deltas observe).
func sameInstance(t *testing.T, got, want *logic.Instance) {
	t.Helper()
	if got.CanonicalKey() != want.CanonicalKey() {
		t.Fatalf("canonical keys differ:\ngot  %s\nwant %s", got, want)
	}
	ga, wa := got.Atoms(), want.Atoms()
	if len(ga) != len(wa) {
		t.Fatalf("length %d, want %d", len(ga), len(wa))
	}
	for i := range ga {
		if ga[i].Key() != wa[i].Key() {
			t.Fatalf("insertion order diverges at %d: %v vs %v", i, ga[i], wa[i])
		}
	}
}

// TestSnapshotRoundTrip: decode(encode(D)) reproduces every example
// database exactly, and re-encoding is a byte-level fixpoint.
func TestSnapshotRoundTrip(t *testing.T) {
	for name, prog := range scenarios(t) {
		t.Run(name, func(t *testing.T) {
			data := EncodeSnapshot(prog.Database)
			dec, err := DecodeSnapshot(data)
			if err != nil {
				t.Fatal(err)
			}
			sameInstance(t, dec, prog.Database)
			if again := EncodeSnapshot(dec); !bytes.Equal(again, data) {
				t.Fatalf("encode(decode(x)) is not a fixpoint: %d vs %d bytes", len(again), len(data))
			}
		})
	}
}

// TestChaseOnDecoded is the acceptance property: for every scenario and
// all three chase variants, a chase run on the decoded instance is
// CanonicalKey- and Stats-identical to the run on the original.
func TestChaseOnDecoded(t *testing.T) {
	variants := []chase.Variant{chase.SemiOblivious, chase.Oblivious, chase.Restricted}
	for name, prog := range scenarios(t) {
		for _, v := range variants {
			t.Run(name+"/"+v.String(), func(t *testing.T) {
				dec, err := DecodeSnapshot(EncodeSnapshot(prog.Database))
				if err != nil {
					t.Fatal(err)
				}
				opts := chase.Options{Variant: v, MaxAtoms: 400}
				want := chase.Run(prog.Database, prog.Rules, opts)
				got := chase.Run(dec, prog.Rules, opts)
				if got.Terminated != want.Terminated {
					t.Fatalf("Terminated = %v, want %v", got.Terminated, want.Terminated)
				}
				if got.Stats != want.Stats {
					t.Fatalf("stats %+v, want %+v", got.Stats, want.Stats)
				}
				sameInstance(t, got.Instance, want.Instance)
			})
		}
	}
}

// TestDeltaStream encodes a chase result as snapshot(D) + one delta per
// round prefix and replays the stream through one Decoder.
func TestDeltaStream(t *testing.T) {
	for name, prog := range scenarios(t) {
		t.Run(name, func(t *testing.T) {
			// Progress fires at every round boundary with the instance
			// length so far — exactly the per-round prefixes a delta
			// publisher would ship.
			var prefixes []int
			opts := chase.Options{
				MaxAtoms: 200,
				Progress: func(s chase.Stats) { prefixes = append(prefixes, s.Atoms) },
			}
			res := chase.Run(prog.Database, prog.Rules, opts)
			data := EncodeSnapshot(prog.Database)
			d := NewDecoder()
			if _, err := d.Snapshot(data); err != nil {
				t.Fatal(err)
			}
			from := prog.Database.Len()
			for _, upto := range append(prefixes, res.Instance.Len()) {
				if upto < from {
					continue
				}
				delta := EncodeDelta(sliceInstance(res.Instance, upto), from)
				if _, err := d.Apply(delta); err != nil {
					t.Fatal(err)
				}
				from = upto
			}
			sameInstance(t, d.Instance(), res.Instance)
		})
	}
}

// sliceInstance rebuilds the insertion-order prefix of length n as its
// own instance (the shape a per-round publisher would hold).
func sliceInstance(in *logic.Instance, n int) *logic.Instance {
	out := logic.NewInstance()
	for _, a := range in.Atoms()[:n] {
		out.Add(a)
	}
	return out
}

// TestEncodingIsProcessIndependent builds the same instance content twice
// — through two independent null factories interleaved with unrelated
// symbol interning, so every process-local id differs — and asserts the
// encodings are byte-identical: the codec is a pure function of content.
func TestEncodingIsProcessIndependent(t *testing.T) {
	build := func(salt string) *logic.Instance {
		// Interning unrelated symbols first shifts all subsequently
		// assigned symbol-table ids.
		for i := 0; i < 5; i++ {
			logic.IDOf(logic.Constant(salt + string(rune('a'+i))))
		}
		f := logic.NewNullFactory()
		n0, _ := f.Intern("first", 1)
		n1, _ := f.Intern("second", 2)
		in := logic.NewInstance()
		in.Add(logic.MakeAtom("r", logic.Constant("a"), n0))
		in.Add(logic.MakeAtom("r", n0, n1))
		in.Add(logic.MakeAtom("s", logic.Fresh(7)))
		return in
	}
	a := EncodeSnapshot(build("wire_salt_one_"))
	b := EncodeSnapshot(build("wire_salt_two_"))
	if !bytes.Equal(a, b) {
		t.Fatal("equal-content instances encode differently: process-local state leaked into the encoding")
	}
}

// fancy is a foreign term kind (defined outside internal/logic).
type fancy int

func (f fancy) Key() string    { return "wiretest\x00" + string(rune('0'+f)) }
func (f fancy) String() string { return "fancy" + string(rune('0'+f)) }

// TestForeignTermRoundTrip: foreign term kinds survive as opaque
// key+rendering pairs, preserving CanonicalKey and the encode fixpoint.
func TestForeignTermRoundTrip(t *testing.T) {
	in := logic.NewInstance()
	in.Add(logic.MakeAtom("t", fancy(1), logic.Constant("c")))
	in.Add(logic.MakeAtom("t", fancy(2), fancy(1)))
	data := EncodeSnapshot(in)
	dec, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	sameInstance(t, dec, in)
	if again := EncodeSnapshot(dec); !bytes.Equal(again, data) {
		t.Fatal("foreign-term encoding is not a fixpoint")
	}
	if dec.Atoms()[0].String() != in.Atoms()[0].String() {
		t.Fatalf("rendering lost: %v vs %v", dec.Atoms()[0], in.Atoms()[0])
	}
}

// TestVariableRoundTrip: the codec is total — a (non-ground) instance
// containing variables round-trips instead of encoding to bytes the
// decoder would reject.
func TestVariableRoundTrip(t *testing.T) {
	in := logic.NewInstance()
	in.Add(logic.MakeAtom("p", logic.Variable("X"), logic.Constant("a")))
	data := EncodeSnapshot(in)
	dec, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	sameInstance(t, dec, in)
	if again := EncodeSnapshot(dec); !bytes.Equal(again, data) {
		t.Fatal("variable encoding is not a fixpoint")
	}
	if _, ok := dec.Atoms()[0].Args[0].(logic.Variable); !ok {
		t.Fatalf("decoded %T, want logic.Variable", dec.Atoms()[0].Args[0])
	}
}

// TestNullDepthSurvives: decoded nulls keep their factory id and depth,
// so depth-derived statistics agree across the wire.
func TestNullDepthSurvives(t *testing.T) {
	f := logic.NewNullFactory()
	n0, _ := f.Intern("a", 3)
	_, _ = f.Intern("unused", 1) // id 1 never appears in the instance
	n2, _ := f.Intern("b", 5)
	in := logic.NewInstance()
	in.Add(logic.MakeAtom("p", n0, n2))
	dec, err := DecodeSnapshot(EncodeSnapshot(in))
	if err != nil {
		t.Fatal(err)
	}
	sameInstance(t, dec, in)
	if got := dec.MaxDepth(); got != in.MaxDepth() {
		t.Fatalf("MaxDepth %d, want %d", got, in.MaxDepth())
	}
	for i, a := range dec.Atoms() {
		for j, trm := range a.Args {
			if logic.TermDepth(trm) != logic.TermDepth(in.Atoms()[i].Args[j]) {
				t.Fatalf("depth of %v diverged", trm)
			}
		}
	}
}

// TestChaseOnDecodedNullsStayDistinct: chasing a decoded instance that
// already contains nulls must not conflate them with the nulls the run
// invents. The engine numbers invented nulls after the input's own
// (logic.NewNullFactoryAt), so old and new nulls stay distinct under
// every Key-derived identity, and the chased result survives a second
// encode→decode round trip unchanged.
func TestChaseOnDecodedNullsStayDistinct(t *testing.T) {
	// Produce a null-bearing snapshot: chase p(a) one round, then ship
	// the result — the advertised snapshot/per-round-delta flow.
	seedProg, err := parser.Parse("p(a). p(X) -> ∃Y q(X, Y).")
	if err != nil {
		t.Fatal(err)
	}
	first := chase.Run(seedProg.Database, seedProg.Rules, chase.Options{})
	if first.Stats.Nulls == 0 {
		t.Fatal("seed chase invented no nulls")
	}
	dec, err := DecodeSnapshot(EncodeSnapshot(first.Instance))
	if err != nil {
		t.Fatal(err)
	}
	// Chase the decoded instance with a rule that invents a new null per
	// q-atom.
	rules, err := parser.ParseRules("q(X, Y) -> ∃Z r(Y, Z).")
	if err != nil {
		t.Fatal(err)
	}
	res := chase.Run(dec, rules, chase.Options{})
	keys := make(map[string]int)
	for _, a := range res.Instance.Atoms() {
		for _, trm := range a.Args {
			if _, ok := trm.(*logic.Null); ok {
				keys[trm.Key()]++
			}
		}
	}
	// ⊥0 from the snapshot (in q and r atoms) and the invented null of
	// the second run must have distinct keys.
	if len(keys) != 2 {
		t.Fatalf("expected 2 distinct null keys, got %v", keys)
	}
	// The chased result survives a second round trip: no nulls merge.
	again, err := DecodeSnapshot(EncodeSnapshot(res.Instance))
	if err != nil {
		t.Fatal(err)
	}
	if again.Len() != res.Instance.Len() || again.CanonicalKey() != res.Instance.CanonicalKey() {
		t.Fatalf("re-encoded chase result changed: %d atoms vs %d", again.Len(), res.Instance.Len())
	}
}

// TestDecodeErrors: corrupt inputs fail with typed, wrap-checkable
// errors instead of panicking or silently misdecoding.
func TestDecodeErrors(t *testing.T) {
	good := EncodeSnapshot(logic.NewDatabase(logic.MakeAtom("p", logic.Constant("a"))))
	cases := map[string][]byte{
		"empty":        {},
		"bad magic":    []byte("XX" + string(kindSnapshot) + "\x01"),
		"bad version":  []byte("CW" + string(kindSnapshot) + "\x63"),
		"truncated":    good[:len(good)-1],
		"trailing":     append(append([]byte{}, good...), 0),
		"delta kind":   EncodeDelta(logic.NewInstance(), 0),
		"foreign null": foreignWithKey("n\x00zz"),
		"foreign var":  foreignWithKey("v\x00x"),
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := DecodeSnapshot(data); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("err = %v, want ErrCorrupt", err)
			}
		})
	}
	t.Run("delta mismatch", func(t *testing.T) {
		d := NewDecoder()
		if _, err := d.Snapshot(good); err != nil {
			t.Fatal(err)
		}
		delta := EncodeDelta(logic.NewDatabase(logic.MakeAtom("q", logic.Constant("b"))), 0)
		// The decoded instance holds 1 atom, the delta claims base 0.
		if _, err := d.Apply(delta); !errors.Is(err, ErrDeltaMismatch) {
			t.Fatalf("err = %v, want ErrDeltaMismatch", err)
		}
	})
	t.Run("corrupt delta is atomic and poisons", func(t *testing.T) {
		d := NewDecoder()
		if _, err := d.Snapshot(good); err != nil {
			t.Fatal(err)
		}
		base := logic.NewDatabase(logic.MakeAtom("p", logic.Constant("a")))
		grown := base.Clone()
		grown.Add(logic.MakeAtom("q", logic.Constant("b")))
		grown.Add(logic.MakeAtom("q", logic.Constant("c")))
		delta := EncodeDelta(grown, 1)
		truncated := delta[:len(delta)-1] // lose the final atom's term index
		before := d.Instance().CanonicalKey()
		if d.Err() != nil {
			t.Fatalf("healthy stream reports Err = %v", d.Err())
		}
		first, err := d.Apply(truncated)
		if first != 0 || !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
		if d.Instance().CanonicalKey() != before {
			t.Fatal("corrupt delta half-applied: the decoded instance changed")
		}
		// The stream is poisoned: even the intact delta is refused, with an
		// error that wraps both ErrCorrupt and the original defect, and
		// Err() reports the defect itself.
		if _, err := d.Apply(delta); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("poisoned Apply err = %v, want ErrCorrupt", err)
		}
		if _, err := d.Snapshot(good); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("poisoned Snapshot err = %v, want ErrCorrupt", err)
		}
		if d.Err() == nil || !errors.Is(d.Err(), ErrCorrupt) {
			t.Fatalf("Err() = %v, want the poisoning defect", d.Err())
		}
		if d.Instance().CanonicalKey() != before {
			t.Fatal("poisoned calls mutated the decoded instance")
		}
	})
	t.Run("mismatched delta base poisons", func(t *testing.T) {
		d := NewDecoder()
		if _, err := d.Snapshot(good); err != nil {
			t.Fatal(err)
		}
		bad := EncodeDelta(logic.NewDatabase(logic.MakeAtom("q", logic.Constant("b"))), 0)
		if _, err := d.Apply(bad); !errors.Is(err, ErrDeltaMismatch) {
			t.Fatalf("err = %v, want ErrDeltaMismatch", err)
		}
		// Framing misuse poisons too: the caller lost sync with the stream.
		ok := EncodeDelta(logic.NewDatabase(logic.MakeAtom("p", logic.Constant("a")), logic.MakeAtom("q", logic.Constant("b"))), 1)
		if _, err := d.Apply(ok); !errors.Is(err, ErrCorrupt) || !errors.Is(err, ErrDeltaMismatch) {
			t.Fatalf("poisoned err = %v, want ErrCorrupt wrapping ErrDeltaMismatch", err)
		}
	})
	t.Run("delta before snapshot", func(t *testing.T) {
		d := NewDecoder()
		if _, err := d.Apply(EncodeDelta(logic.NewInstance(), 0)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("double snapshot", func(t *testing.T) {
		d := NewDecoder()
		if _, err := d.Snapshot(good); err != nil {
			t.Fatal(err)
		}
		if _, err := d.Snapshot(good); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
}

// foreignWithKey hand-assembles a snapshot whose single manifest term is
// a foreign record carrying the given identity key.
func foreignWithKey(key string) []byte {
	e := &encoder{}
	e.header(kindSnapshot)
	e.uint(1) // one predicate
	e.str("p")
	e.uint(1) // arity
	e.uint(1) // one term
	e.buf = append(e.buf, 'o')
	e.str(key)
	e.str("x")
	e.uint(1) // one atom
	e.uint(0)
	e.uint(0)
	return e.buf
}
